"""Job execution: split -> map (+combine, +partition) -> shuffle -> reduce.

The runtime is layered:

- :mod:`repro.mapreduce.executors` decides *where* task batches run
  (serial / thread pool / process pool) and owns the one retry path
  (:class:`~repro.mapreduce.executors.TaskRunner`);
- :class:`Shuffle` partitions intermediate pairs *inside each map
  task* (map-side partitioning: pre-partitioned output crosses the
  process boundary once and makes per-partition reduce scheduling
  natural) and merges the per-task partition lists between phases;
- this module composes them: both the map and the reduce phase run
  through the same executor, so reducers parallelise exactly like
  mappers.

Output is deterministic for every backend: results are collected in
task order and each reduce partition re-sorts its pairs, so completion
order cannot leak into the output.

Fault tolerance mirrors Hadoop's task model: a failing task (mapper or
reducer raising any exception) is retried from scratch up to
``JobConf.max_task_attempts`` times — tasks are pure functions of their
split, so re-execution is always safe — and the job fails with
:class:`TaskFailedError` only when one task exhausts its attempts.
Every retry is counted in ``framework.task_retries`` (exhausted tasks
included) and every attempt is visible in the runtime's event stream.
"""

from __future__ import annotations

import itertools
import os
import re
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as _futures_wait
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.events import Event, EventKind, EventLog
from repro.mapreduce.executors import (
    CacheHandle,
    Executor,
    TaskFailedError,
    TaskOutcome,
    TaskRunner,
    TaskTimeoutError,
    resolve_executor,
)
from repro.mapreduce.faults import ChaosExecutor, FaultPlan
from repro.mapreduce.job import (
    ArraySumCombiner,
    BatchMapper,
    Context,
    Job,
    Partitioner,
    fold_uniform_pairs,
    group_sorted_pairs,
)
from repro.mapreduce.spill import (
    DEFAULT_SEGMENT_BYTES,
    SpilledBucket,
    SpilledPartition,
    spill_bucket,
)
from repro.mapreduce.types import (
    ColumnarBucket,
    InputSplit,
    JobConf,
    bucket_nbytes,
    bucket_pairs,
    iter_split_blocks,
    pack_pairs,
)

#: Backwards-compatible alias; the canonical name lives on ``Counters``.
TASK_RETRIES = Counters.TASK_RETRIES

__all__ = [
    "JobResult",
    "MapReduceRuntime",
    "RuntimeContext",
    "Shuffle",
    "ShuffleIntegrityError",
    "TaskFailedError",
    "TaskTimeoutError",
    "TASK_RETRIES",
    "new_run_id",
]

_RUN_IDS = itertools.count(1)


def new_run_id(prefix: str = "run") -> str:
    """Process-unique run identifier (``chain-3``); cheap, monotone."""
    return f"{prefix}-{next(_RUN_IDS)}"


@dataclass(frozen=True)
class RuntimeContext:
    """Injected wiring for one chain's runtime (the service-plane seam).

    Historically every :class:`MapReduceRuntime` constructed its own
    executor and event log, so only one chain could sensibly exist per
    process.  A context inverts that ownership: the scheduler (or a
    test) decides the executor — typically one whose ``slot_lease`` is
    bound to the shared fair-share pool — the per-chain event log, the
    run identity and the fault/timeout policies, and hands the bundle
    to the runtime.  When a context is given it *fully* determines the
    runtime's wiring; the runtime's own keyword defaults are ignored.
    """

    executor: "str | Executor | None" = None
    max_workers: int | None = None
    events: EventLog | None = None
    run_id: str | None = None
    tenant: str = "default"
    fault_plan: FaultPlan | None = None
    task_timeout_s: float | None = None
    speculative: bool = False
    speculation_factor: float = 2.0
    #: Per-run observability scope (``Observability.for_run``); kept as
    #: ``Any`` so the mapreduce layer stays import-free of ``repro.obs``.
    obs: Any = None


class ShuffleIntegrityError(RuntimeError):
    """A map task's payload disagrees with its own counters.

    The in-process analogue of Hadoop's shuffle checksum verification:
    every map task accounts for the records it emitted, so a corrupted
    or truncated partition list is detectable without trusting the
    transport.  Raised inside the task-settlement path, it is treated
    exactly like a task failure — the attempt is retried from scratch.
    """


class Shuffle:
    """Partitioning of intermediate pairs, split across the two sides.

    ``scatter`` runs map-side, inside each map task: it fans the task's
    pairs out into ``num_partitions`` buckets and accounts for the
    shuffle volume in the task's own counters.  ``gather`` runs in the
    runtime between the phases: it concatenates the per-task buckets
    into one partition payload each (in task order, preserving
    determinism).

    With ``columnar=True`` a bucket whose pairs are uniform —
    scalar/tuple keys, fixed-shape ndarray values — is packed into a
    :class:`~repro.mapreduce.types.ColumnarBucket`, so ``gather``
    concatenates value blocks instead of pair lists and the process
    executor ships one out-of-band buffer per bucket.  Anything
    non-uniform keeps the ``list[tuple]`` representation, which doubles
    as the parity oracle in tests.

    With a ``spill_budget_bytes`` *and* a ``spill_dir``, ``scatter``
    additionally bounds the task's resident payload: columnar buckets
    that would push the retained bytes past the budget are written as
    compressed segment files (:mod:`repro.mapreduce.spill`) and
    replaced by :class:`~repro.mapreduce.spill.SpilledBucket` stand-ins.
    ``shuffle_bytes`` keeps counting logical payload, so spilled runs
    stay comparable — and byte-identical in output — to in-heap runs.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        num_partitions: int,
        columnar: bool = True,
        spill_dir: str | None = None,
        spill_budget_bytes: int | None = None,
        spill_tag: str = "task",
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.partitioner = partitioner
        self.num_partitions = num_partitions
        self.columnar = columnar
        self.spill_dir = spill_dir
        self.spill_budget_bytes = spill_budget_bytes
        self.spill_tag = spill_tag

    def scatter(
        self, pairs: list[tuple[Any, Any]], counters: Counters
    ) -> list[Any]:
        buckets: list[list[tuple[Any, Any]]] = [
            [] for _ in range(self.num_partitions)
        ]
        for key, value in pairs:
            pid = self.partitioner.partition(key, self.num_partitions)
            if not 0 <= pid < self.num_partitions:
                raise ValueError(
                    f"partitioner returned {pid} for {self.num_partitions} "
                    "reducers"
                )
            buckets[pid].append((key, value))
        counters.increment(Counters.FRAMEWORK, Counters.SHUFFLE_RECORDS, len(pairs))
        spillable = (
            self.spill_dir is not None and self.spill_budget_bytes is not None
        )
        payload: list[Any] = []
        shuffled_bytes = 0
        retained_bytes = 0
        spilled_disk_bytes = 0
        spill_segments = 0
        for pid, bucket in enumerate(buckets):
            packed = pack_pairs(bucket) if self.columnar else None
            chosen: Any = packed if packed is not None else bucket
            size = bucket_nbytes(chosen)
            shuffled_bytes += size
            if (
                spillable
                and isinstance(chosen, ColumnarBucket)
                and len(chosen) > 0
                and retained_bytes + size > self.spill_budget_bytes
            ):
                # Over budget: this bucket's block moves to disk.  Only
                # columnar buckets spill — tuple buckets are the parity
                # oracle and jobs that hit them are small by design.
                spilled = spill_bucket(
                    chosen,
                    self.spill_dir,
                    f"{self.spill_tag}-p{pid}",
                    segment_bytes=min(
                        DEFAULT_SEGMENT_BYTES, self.spill_budget_bytes
                    ),
                )
                spilled_disk_bytes += spilled.disk_bytes
                spill_segments += len(spilled.segments)
                chosen = spilled
            else:
                retained_bytes += size
            payload.append(chosen)
        counters.increment(
            Counters.FRAMEWORK, Counters.SHUFFLE_BYTES, shuffled_bytes
        )
        if spill_segments:
            counters.increment(
                Counters.FRAMEWORK, Counters.SPILLED_BYTES, spilled_disk_bytes
            )
            counters.increment(
                Counters.FRAMEWORK, Counters.SPILL_SEGMENTS, spill_segments
            )
        return payload

    @staticmethod
    def gather(
        task_buckets: Sequence[Sequence[Any]],
        num_partitions: int,
    ) -> list[Any]:
        partitions: list[Any] = []
        for pid in range(num_partitions):
            chunks = [
                buckets[pid] for buckets in task_buckets if len(buckets[pid])
            ]
            partitions.append(Shuffle.merge_buckets(chunks))
        return partitions

    @staticmethod
    def merge_buckets(
        chunks: Sequence[Any],
    ) -> Any:
        """Merge one partition's task-ordered bucket chunks.

        All-columnar chunks with a shared value dtype/shape concatenate
        into one block; chunks containing a spilled bucket stay lazy as
        a :class:`~repro.mapreduce.spill.SpilledPartition` (segments
        are only materialised reducer-side, one at a time); any other
        mix degrades to the tuple representation.
        """
        if chunks and all(isinstance(c, ColumnarBucket) for c in chunks):
            first = chunks[0]
            if all(
                c.block.dtype == first.block.dtype
                and c.block.shape[1:] == first.block.shape[1:]
                for c in chunks[1:]
            ):
                return ColumnarBucket.concat(list(chunks))
        if (
            chunks
            and any(isinstance(c, SpilledBucket) for c in chunks)
            and all(
                isinstance(c, (ColumnarBucket, SpilledBucket)) for c in chunks
            )
        ):
            return SpilledPartition(tuple(chunks))
        merged: list[tuple[Any, Any]] = []
        for chunk in chunks:
            merged.extend(bucket_pairs(chunk))
        return merged


@dataclass
class JobResult:
    """Output pairs plus accounting for one executed job."""

    output: list[tuple[Any, Any]]
    counters: Counters
    conf: JobConf
    wall_time: float
    executor: str = "serial"
    map_task_times: list[float] = field(default_factory=list)
    reduce_task_times: list[float] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)

    @property
    def values(self) -> list[Any]:
        return [value for _, value in self.output]

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_task_times)

    @property
    def num_reduce_tasks(self) -> int:
        return len(self.reduce_task_times)

    def phase_seconds(self, phase: str) -> float:
        """Wall time of one phase (``"map"`` / ``"reduce"``), from events."""
        return sum(
            e.duration_s or 0.0
            for e in self.events
            if e.kind == EventKind.PHASE_FINISH and e.phase == phase
        )

    def as_dict(self) -> dict[Any, Any]:
        """Output pairs as a dict (requires unique keys)."""
        out: dict[Any, Any] = {}
        for key, value in self.output:
            if key in out:
                raise ValueError(f"duplicate output key {key!r}")
            out[key] = value
        return out


def _resolve_block_rows(split: InputSplit, conf: JobConf) -> int | None:
    """Rows per ``BatchMapper`` delivery for one split.

    The explicit ``max_block_rows`` knob wins; otherwise a memory
    budget is translated into a row cap for file-backed splits that
    report their row width (``records.row_nbytes``), sized so one
    resident chunk takes roughly a quarter of the budget.  ``None``
    keeps the historical whole-split delivery.
    """
    if conf.max_block_rows is not None:
        return conf.max_block_rows
    if conf.memory_budget_bytes is None:
        return None
    row_nbytes = getattr(split.records, "row_nbytes", None)
    if not row_nbytes:
        return None
    return max(1, conf.memory_budget_bytes // (4 * int(row_nbytes)))


def _run_map_task(
    job: Job,
    split: InputSplit,
    conf: JobConf,
) -> tuple[Any, Counters, float]:
    """Execute one mapper task over one split.

    Runs the mapper lifecycle, the optional combiner, and — for jobs
    with a reduce phase — map-side partitioning.  The payload is a flat
    pair list for map-only jobs and a per-partition bucket list
    otherwise.  A :class:`BatchMapper` receives the split as one block,
    or — under ``max_block_rows`` / a memory budget — as a stream of
    bounded chunks (multiple ``map_batch`` calls per task).
    """
    started = time.perf_counter()
    counters = Counters()
    ctx = Context(job.cache, counters, task_id=split.split_id, conf=conf)
    mapper = job.mapper_factory()
    mapper.setup(ctx)
    n_records = 0
    blocks = (
        iter_split_blocks(split, _resolve_block_rows(split, conf))
        if isinstance(mapper, BatchMapper)
        else None
    )
    if blocks is not None:
        for keys, block in blocks:
            mapper.map_batch(keys, block, ctx)
            n_records += len(keys)
    else:
        for key, value in split:
            mapper.map(key, value, ctx)
            n_records += 1
    mapper.cleanup(ctx)
    pairs = ctx.drain()
    counters.increment(Counters.FRAMEWORK, Counters.MAP_INPUT_RECORDS, n_records)
    counters.increment(Counters.FRAMEWORK, Counters.MAP_OUTPUT_RECORDS, len(pairs))

    if job.combiner_factory is not None and pairs:
        combiner = job.combiner_factory()
        combined: list[tuple[Any, Any]] | None = None
        if isinstance(combiner, ArraySumCombiner) and conf.sort_keys:
            # Vectorized fast path: one argsort + per-group np.cumsum
            # fold over uniform pairs, bitwise-identical to the scalar
            # loop below (the oracle for anything non-uniform).
            combined = fold_uniform_pairs(pairs)
        if combined is None:
            combine_ctx = Context(
                job.cache, counters, task_id=split.split_id, conf=conf
            )
            for key, values in group_sorted_pairs(pairs, conf.sort_keys):
                combiner.combine(key, values, combine_ctx)
            combined = combine_ctx.drain()
            emitted_keys = {k for k, _ in pairs}
            for key, _ in combined:
                if key not in emitted_keys:
                    raise ValueError(
                        f"combiner emitted new key {key!r}; combiners must "
                        "preserve the key space of their input"
                    )
        pairs = combined
        counters.increment(
            Counters.FRAMEWORK, Counters.COMBINE_OUTPUT_RECORDS, len(pairs)
        )

    payload: Any = pairs
    if conf.num_reducers > 0 and job.reducer_factory is not None:
        shuffle = Shuffle(
            job.partitioner,
            conf.num_reducers,
            columnar=conf.columnar_shuffle,
            spill_dir=conf.spill_dir,
            spill_budget_bytes=conf.memory_budget_bytes,
            spill_tag=f"{conf.name}-m{split.split_id}",
        )
        payload = shuffle.scatter(pairs, counters)
    return payload, counters, time.perf_counter() - started


def _map_payload_validator(
    job: Job,
    conf: JobConf,
    task_id: int | None = None,
    allowed_partitions: "set[int] | None" = None,
):
    """Shuffle-integrity check for one job's map payloads.

    Compares the records present in a map task's payload against the
    record counts the task itself accumulated; a mismatch means the
    payload was corrupted or truncated after emission and fails the
    attempt (see :class:`ShuffleIntegrityError`).  When the job carries
    a partition hint, ``allowed_partitions`` additionally pins the
    buckets task ``task_id`` may populate: records in an undeclared
    bucket would silently miss a pipelined reduce that already ran, so
    a lying hint fails the task loudly instead.
    """
    reduce_job = conf.num_reducers > 0 and job.reducer_factory is not None
    has_combiner = job.combiner_factory is not None

    def validate(payload: Any, task_counters: Counters) -> None:
        if reduce_job:
            if len(payload) != conf.num_reducers:
                raise ShuffleIntegrityError(
                    f"map task produced {len(payload)} shuffle partitions, "
                    f"expected {conf.num_reducers}"
                )
            found = sum(len(bucket) for bucket in payload)
            expected = task_counters.framework_value(Counters.SHUFFLE_RECORDS)
            if allowed_partitions is not None:
                for pid, bucket in enumerate(payload):
                    if pid not in allowed_partitions and len(bucket):
                        raise ShuffleIntegrityError(
                            f"map task {task_id} emitted {len(bucket)} "
                            f"record(s) to partition {pid} outside its "
                            f"declared partitions "
                            f"{sorted(allowed_partitions)}; fix the job's "
                            "partition_hint"
                        )
        else:
            found = len(payload)
            emitted = task_counters.framework_value(Counters.MAP_OUTPUT_RECORDS)
            if has_combiner and emitted > 0:
                expected = task_counters.framework_value(
                    Counters.COMBINE_OUTPUT_RECORDS
                )
            else:
                expected = emitted
        if found != expected:
            raise ShuffleIntegrityError(
                f"map task payload carries {found} records but its counters "
                f"claim {expected} (corrupted shuffle partition?)"
            )

    return validate


def _run_reduce_task(
    job: Job,
    partition_id: int,
    bucket: "ColumnarBucket | list[tuple[Any, Any]]",
    conf: JobConf,
) -> tuple[list[tuple[Any, Any]], Counters, float]:
    """Execute one reducer task over one shuffled partition.

    The partition arrives in either shuffle representation; a columnar
    bucket is unpacked into ``(key, value_row)`` view pairs here, so
    reducers observe exactly the tuple-path input.
    """
    started = time.perf_counter()
    counters = Counters()
    pairs = bucket_pairs(bucket)
    ctx = Context(job.cache, counters, task_id=partition_id, conf=conf)
    assert job.reducer_factory is not None
    reducer = job.reducer_factory()
    reducer.setup(ctx)
    n_groups = 0
    for key, values in group_sorted_pairs(pairs, conf.sort_keys):
        reducer.reduce(key, values, ctx)
        n_groups += 1
    reducer.cleanup(ctx)
    output = ctx.drain()
    counters.increment(Counters.FRAMEWORK, Counters.REDUCE_INPUT_GROUPS, n_groups)
    counters.increment(
        Counters.FRAMEWORK, Counters.REDUCE_OUTPUT_RECORDS, len(output)
    )
    return output, counters, time.perf_counter() - started


_SPILL_IDS = itertools.count(1)


def _prepare_spill(conf: JobConf) -> tuple[JobConf, str]:
    """Resolve the run-scoped spill directory for one budgeted job.

    ``spill_dir=None`` gets a fresh temporary directory; a user-given
    root gets a job-unique subdirectory (job name, pid, sequence
    number) so retries, speculative attempts and concurrent jobs
    sharing the root never collide on segment files.  The caller owns
    the returned directory and removes it when the job finishes —
    orphans from killed attempts vanish with it.
    """
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", conf.name) or "job"
    if conf.spill_dir is None:
        path = tempfile.mkdtemp(prefix=f"repro-spill-{safe}-")
    else:
        path = os.path.join(
            conf.spill_dir, f"{safe}-{os.getpid()}-{next(_SPILL_IDS)}"
        )
        os.makedirs(path, exist_ok=True)
    return replace(conf, spill_dir=path), path


def _resolve_broadcast(job: Job, executor: Executor) -> Job:
    """Ship the job's distributed cache once per worker, not per task.

    When the (possibly chaos-wrapped) executor supports cache broadcast
    (the process backend), the job dispatched to tasks is swapped for a
    copy whose cache is a fingerprint-keyed
    :class:`~repro.mapreduce.executors.CacheHandle` — task pickles stay
    O(split), and each pool worker receives the real cache exactly once
    via its initializer.  Identity for every other backend.
    """
    base = executor
    while isinstance(base, ChaosExecutor):
        base = base.inner
    broadcast = getattr(base, "broadcast", None)
    if (
        broadcast is None
        or len(job.cache) == 0
        or isinstance(job.cache, CacheHandle)
    ):
        return job
    return replace(job, cache=broadcast(job.cache))


class MapReduceRuntime:
    """Executes :class:`~repro.mapreduce.job.Job` specifications.

    Parameters
    ----------
    max_workers:
        Worker count for pool-backed executors.  With ``executor=None``
        the historical auto rule applies: ``max_workers`` > 1 selects
        the process pool, anything else the serial executor.
    executor:
        Backend selection: ``"serial"``, ``"thread"``, ``"process"``,
        an :class:`~repro.mapreduce.executors.Executor` instance, or
        ``None`` for the auto rule.  A job may override the runtime
        default via ``JobConf.executor``.
    obs:
        Optional :class:`repro.obs.Observability` context.  When given
        (and enabled) its event bridge subscribes to this runtime's
        event log, deriving job/phase/task spans, memory samples and
        task-duration histograms from the lifecycle stream.
    fault_plan:
        Optional :class:`~repro.mapreduce.faults.FaultPlan`.  When set,
        every executor this runtime resolves (the default and per-job
        overrides) is wrapped in a
        :class:`~repro.mapreduce.faults.ChaosExecutor` announcing its
        injections on this runtime's event log.  ``None`` (default) is
        fully inert.
    task_timeout_s / speculative / speculation_factor:
        Runtime-wide defaults for the task-lifecycle policies of
        :class:`~repro.mapreduce.executors.TaskRunner`; a job may
        override the first two via ``JobConf``.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        executor: str | Executor | None = None,
        obs: Any = None,
        fault_plan: FaultPlan | None = None,
        task_timeout_s: float | None = None,
        speculative: bool = False,
        speculation_factor: float = 2.0,
        context: RuntimeContext | None = None,
    ) -> None:
        if context is not None:
            # An injected context fully determines the wiring; the other
            # keyword defaults are ignored (except obs, which may still
            # be passed explicitly and falls back to the context's).
            max_workers = context.max_workers
            executor = context.executor
            fault_plan = context.fault_plan
            task_timeout_s = context.task_timeout_s
            speculative = context.speculative
            speculation_factor = context.speculation_factor
            if obs is None:
                obs = context.obs
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.context = context
        self.run_id = context.run_id if context is not None else None
        self.max_workers = max_workers
        if context is not None and context.events is not None:
            self.events = context.events
        else:
            self.events = EventLog(run_id=self.run_id)
        self.fault_plan = fault_plan
        self.task_timeout_s = task_timeout_s
        self.speculative = speculative
        self.speculation_factor = speculation_factor
        self.default_executor = self._wrap_chaos(
            resolve_executor(executor, max_workers)
        )
        self.history: list[JobResult] = []
        self.obs = obs
        if obs is not None:
            obs.observe_events(self.events)

    def _wrap_chaos(self, executor: Executor) -> Executor:
        if self.fault_plan is None:
            return executor
        return ChaosExecutor(executor, self.fault_plan, events=self.events)

    # -- public API ---------------------------------------------------

    def run(self, job: Job, splits: Sequence[InputSplit], conf: JobConf) -> JobResult:
        """Run one job over pre-computed input splits."""
        spill_root: str | None = None
        if (
            conf.memory_budget_bytes is not None
            and conf.num_reducers > 0
            and job.reducer_factory is not None
        ):
            # Resolve the job's spill directory up front so every task
            # (local or in a pool worker) sees the same path via conf;
            # the whole tree goes away with the job, orphaned segments
            # from retried or speculative attempts included.
            conf, spill_root = _prepare_spill(conf)
        try:
            return self._run(job, splits, conf)
        finally:
            if spill_root is not None:
                shutil.rmtree(spill_root, ignore_errors=True)

    def _run(
        self, job: Job, splits: Sequence[InputSplit], conf: JobConf
    ) -> JobResult:
        started = time.perf_counter()
        counters = Counters()
        executor = (
            self._wrap_chaos(resolve_executor(conf.executor, self.max_workers))
            if conf.executor is not None
            else self.default_executor
        )
        job = _resolve_broadcast(job, executor)
        runner = TaskRunner(
            executor,
            self.events,
            conf.name,
            conf.max_task_attempts,
            conf.retry_backoff_s,
            task_timeout_s=(
                conf.task_timeout_s
                if conf.task_timeout_s is not None
                else self.task_timeout_s
            ),
            speculative=(
                conf.speculative
                if conf.speculative is not None
                else self.speculative
            ),
            speculation_factor=self.speculation_factor,
        )
        first_event = len(self.events)
        self.events.emit(EventKind.JOB_START, conf.name)

        reduce_job = conf.num_reducers > 0 and job.reducer_factory is not None
        pool = None
        if reduce_job and len(splits) > 1 and self._pipeline_allowed(
            executor, conf, runner
        ):
            pool = executor.make_pool()

        if pool is not None:
            output, map_times, reduce_times = self._run_pipelined(
                runner, pool, job, list(splits), conf, counters
            )
        else:
            map_results = runner.run_phase(
                "map",
                _run_map_task,
                [(job, split, conf) for split in splits],
                [split.split_id for split in splits],
                counters,
                validate=_map_payload_validator(job, conf),
            )
            map_outputs = [payload for payload, _ in map_results]
            map_times = [elapsed for _, elapsed in map_results]

            reduce_times = []
            if not reduce_job:
                output = [pair for pairs in map_outputs for pair in pairs]
            else:
                partitions = Shuffle.gather(map_outputs, conf.num_reducers)
                reduce_results = runner.run_phase(
                    "reduce",
                    _run_reduce_task,
                    [
                        (job, pid, partitions[pid], conf)
                        for pid in range(conf.num_reducers)
                    ],
                    list(range(conf.num_reducers)),
                    counters,
                )
                output = [
                    pair
                    for part_output, _ in reduce_results
                    for pair in part_output
                ]
                reduce_times = [elapsed for _, elapsed in reduce_results]

        wall_time = time.perf_counter() - started
        self.events.emit(
            EventKind.JOB_FINISH,
            conf.name,
            duration_s=wall_time,
            counters=counters.snapshot(),
        )
        result = JobResult(
            output=output,
            counters=counters,
            conf=conf,
            wall_time=wall_time,
            executor=executor.name,
            map_task_times=map_times,
            reduce_task_times=reduce_times,
            events=self.events.events[first_event:],
        )
        self.history.append(result)
        return result

    # -- pipelined two-phase scheduling ---------------------------------

    def _pipeline_allowed(
        self, executor: Executor, conf: JobConf, runner: TaskRunner
    ) -> bool:
        """Whether this job may run map and reduce on one shared pool.

        Pipelining is on by default for pool-backed executors
        (``JobConf.pipelined`` overrides per job); the serial executor
        has no pool, and the chaos / task-timeout / speculation
        machinery keeps the classic full-barrier semantics — those
        policies reason about one phase at a time.
        """
        pipelined = conf.pipelined if conf.pipelined is not None else True
        return (
            pipelined
            and not isinstance(executor, ChaosExecutor)
            and runner.task_timeout_s is None
            and not runner.speculative
        )

    def _run_pipelined(
        self,
        runner: TaskRunner,
        pool: Any,
        job: Job,
        splits: list[InputSplit],
        conf: JobConf,
        counters: Counters,
    ) -> tuple[list[tuple[Any, Any]], list[float], list[float]]:
        """Partition-ready reduce scheduling on one shared pool.

        Map and reduce tasks share the executor's pool: the reduce task
        for partition ``p`` is dispatched the moment every map task
        that can contribute to ``p`` has delivered its bucket — by
        default that is all of them (delivery happens at map-task
        settlement, so the barrier collapses to "last contributor
        settled"), but a job carrying a
        :attr:`~repro.mapreduce.job.Job.partition_hint` unlocks ``p``
        as soon as its *declared* contributors are done, overlapping
        the map tail with reduce work.  Output stays byte-identical to
        the barrier path: bucket chunks merge in map-task order and
        reduce outputs concatenate in partition order, so completion
        order cannot leak into the result.
        """
        num_parts = conf.num_reducers
        task_ids = [split.split_id for split in splits]
        map_calls = {
            split.split_id: (job, split, conf) for split in splits
        }
        hint = job.partition_hint
        declared: dict[int, set[int] | None] = {}
        for tid in task_ids:
            parts = None if hint is None else hint(tid)
            declared[tid] = (
                None if parts is None else {int(p) for p in parts}
            )
        contributors = {
            pid: [
                tid
                for tid in task_ids
                if declared[tid] is None or pid in declared[tid]
            ]
            for pid in range(num_parts)
        }
        validators = {
            tid: _map_payload_validator(
                job, conf, task_id=tid, allowed_partitions=declared[tid]
            )
            for tid in task_ids
        }

        map_payloads: dict[int, Any] = {}
        map_times: dict[int, float] = {}
        reduce_calls: dict[int, tuple] = {}
        reduce_outputs: dict[int, list[tuple[Any, Any]]] = {}
        reduce_times: dict[int, float] = {}
        pending: dict[Future, tuple[str, int]] = {}
        dispatched: set[int] = set()
        map_phase_done = False
        reduce_phase_started: float | None = None
        map_started = time.perf_counter()

        def dispatch_ready_reduces() -> None:
            nonlocal reduce_phase_started
            for pid in range(num_parts):
                if pid in dispatched:
                    continue
                if any(t not in map_payloads for t in contributors[pid]):
                    continue
                chunks = [
                    map_payloads[t][pid]
                    for t in contributors[pid]
                    if len(map_payloads[t][pid])
                ]
                partition = Shuffle.merge_buckets(chunks)
                if reduce_phase_started is None:
                    reduce_phase_started = time.perf_counter()
                    self.events.emit(
                        EventKind.PHASE_START, conf.name, phase="reduce"
                    )
                if not map_phase_done:
                    counters.increment(
                        Counters.FRAMEWORK, Counters.PIPELINED_REDUCES
                    )
                dispatched.add(pid)
                reduce_calls[pid] = (job, pid, partition, conf)
                self.events.emit(
                    EventKind.TASK_START,
                    conf.name,
                    phase="reduce",
                    task_id=pid,
                    attempt=1,
                )
                pending[pool.submit(_run_reduce_task, *reduce_calls[pid])] = (
                    "reduce",
                    pid,
                )

        self.events.emit(EventKind.PHASE_START, conf.name, phase="map")
        try:
            for tid in task_ids:
                self.events.emit(
                    EventKind.TASK_START,
                    conf.name,
                    phase="map",
                    task_id=tid,
                    attempt=1,
                )
                pending[pool.submit(_run_map_task, *map_calls[tid])] = (
                    "map",
                    tid,
                )
            while len(reduce_outputs) < num_parts:
                done, _ = _futures_wait(
                    list(pending), return_when=FIRST_COMPLETED
                )
                for future in done:
                    phase, tid = pending.pop(future)
                    error = future.exception()
                    outcome = (
                        TaskOutcome(error=error)
                        if error is not None
                        else TaskOutcome(value=future.result())
                    )
                    if phase == "map":
                        # Settlement (validation, retries, events) is
                        # the runner's one shared path; retries re-run
                        # in-process, exactly like the barrier path.
                        payload, elapsed = runner._settle(
                            "map",
                            tid,
                            _run_map_task,
                            map_calls[tid],
                            outcome,
                            counters,
                            validate=validators[tid],
                        )
                        map_payloads[tid] = payload
                        map_times[tid] = elapsed
                        if len(map_payloads) == len(task_ids):
                            map_phase_done = True
                            self.events.emit(
                                EventKind.PHASE_FINISH,
                                conf.name,
                                phase="map",
                                duration_s=time.perf_counter() - map_started,
                                counters=counters.snapshot(),
                            )
                        dispatch_ready_reduces()
                    else:
                        output, elapsed = runner._settle(
                            "reduce",
                            tid,
                            _run_reduce_task,
                            reduce_calls[tid],
                            outcome,
                            counters,
                        )
                        reduce_outputs[tid] = output
                        reduce_times[tid] = elapsed
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        self.events.emit(
            EventKind.PHASE_FINISH,
            conf.name,
            phase="reduce",
            duration_s=time.perf_counter()
            - (reduce_phase_started or map_started),
            counters=counters.snapshot(),
        )
        output = [
            pair
            for pid in range(num_parts)
            for pair in reduce_outputs[pid]
        ]
        return (
            output,
            [map_times[tid] for tid in task_ids],
            [reduce_times[pid] for pid in range(num_parts)],
        )

    # -- accounting -----------------------------------------------------

    def total_counters(self) -> Counters:
        """Aggregate counters across every job this runtime executed."""
        total = Counters()
        for result in self.history:
            total.merge(result.counters)
        return total

    @property
    def jobs_run(self) -> int:
        return len(self.history)
