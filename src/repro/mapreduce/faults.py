"""Deterministic fault injection: the chaos layer of the runtime.

Multi-hour MapReduce runs on real clusters see task crashes, straggler
nodes and corrupted shuffle fetches as routine events; the paper's
Hadoop setting assumes all three are survivable.  This module makes
those faults *reproducible* so the fault-tolerance machinery (retries,
timeouts, speculation, shuffle-integrity validation, checkpoint/resume)
can be tested deterministically:

- :class:`FaultPlan` parses a compact fault-spec grammar and decides —
  from a seed and a stable hash, never from RNG call order — whether a
  given ``(job, phase, task, attempt)`` coordinate gets a fault.  The
  schedule is therefore identical across serial, thread and process
  executors and across repeated runs.
- :class:`ChaosExecutor` wraps any :class:`Executor` and applies the
  plan through the executor wrapping hooks, leaving scheduling,
  retries and output ordering untouched.

Fault-spec grammar (``;``-separated clauses)::

    clause := phase ":" kind (":" key "=" value)*
    phase  := "map" | "reduce" | "*"
    kind   := "error"    raise an injected exception before the task runs
            | "delay"    sleep ``ms`` milliseconds first (straggler)
            | "corrupt"  truncate the task's output payload (map only;
                         caught by the runtime's shuffle-integrity check)
    keys   := p=<probability 0..1>   (default 1.0)
            | ms=<delay milliseconds> (delay clauses; default 25)
            | job=<substring of the job name>
            | task=<task id>
            | always=1               (inject on *every* attempt —
                                      a permanent fault; default is
                                      first attempts only, so retries
                                      recover like transient cluster
                                      faults do)

Examples::

    map:error:p=0.2                        every 5th map task crashes once
    reduce:delay:p=0.5:ms=40               half the reducers straggle
    map:corrupt:p=0.3                      corrupted shuffle partitions
    map:error:job=em_estep:task=0:always=1 kill one task permanently

Injected faults are announced through ``fault_injected`` events, so a
chaos run's schedule is visible in traces and run reports.  Fully
inert when no plan is configured: the default executor wrapping hooks
are the identity.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mapreduce.events import EventKind, EventLog
from repro.mapreduce.executors import Executor, TaskOutcome

ERROR = "error"
DELAY = "delay"
CORRUPT = "corrupt"
_KINDS = (ERROR, DELAY, CORRUPT)
_PHASES = ("map", "reduce", "*")


class ChaosError(RuntimeError):
    """The exception raised by an injected ``error`` fault."""


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec."""

    phase: str
    kind: str
    probability: float = 1.0
    delay_ms: float = 25.0
    job: str | None = None
    task_id: int | None = None
    always: bool = False
    index: int = 0  # clause position: salts the per-clause hash draw

    def describe(self) -> str:
        parts = [f"{self.phase}:{self.kind}"]
        if self.probability < 1.0:
            parts.append(f"p={self.probability:g}")
        if self.kind == DELAY:
            parts.append(f"ms={self.delay_ms:g}")
        if self.job is not None:
            parts.append(f"job={self.job}")
        if self.task_id is not None:
            parts.append(f"task={self.task_id}")
        if self.always:
            parts.append("always=1")
        return ":".join(parts)


def parse_fault_spec(spec: str) -> tuple[FaultClause, ...]:
    """Parse the fault-spec grammar into clauses (see module docs)."""
    clauses: list[FaultClause] = []
    for index, raw in enumerate(part for part in spec.split(";") if part.strip()):
        fields = [field.strip() for field in raw.strip().split(":")]
        if len(fields) < 2:
            raise ValueError(
                f"fault clause {raw!r} needs at least phase:kind"
            )
        phase, kind = fields[0], fields[1]
        if phase not in _PHASES:
            raise ValueError(
                f"fault clause {raw!r}: phase must be one of {_PHASES}"
            )
        if kind not in _KINDS:
            raise ValueError(
                f"fault clause {raw!r}: kind must be one of {_KINDS}"
            )
        if kind == CORRUPT and phase != "map":
            raise ValueError(
                f"fault clause {raw!r}: corrupt faults target the shuffle "
                "and only apply to the map phase"
            )
        params: dict[str, Any] = {}
        for field in fields[2:]:
            if "=" not in field:
                raise ValueError(
                    f"fault clause {raw!r}: parameter {field!r} is not "
                    "key=value"
                )
            key, value = field.split("=", 1)
            if key == "p":
                params["probability"] = float(value)
            elif key == "ms":
                params["delay_ms"] = float(value)
            elif key == "job":
                params["job"] = value
            elif key == "task":
                params["task_id"] = int(value)
            elif key == "always":
                params["always"] = value not in ("0", "false", "")
            else:
                raise ValueError(
                    f"fault clause {raw!r}: unknown parameter {key!r}"
                )
        probability = params.get("probability", 1.0)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"fault clause {raw!r}: p must be within [0, 1]"
            )
        clauses.append(FaultClause(phase=phase, kind=kind, index=index, **params))
    if not clauses:
        raise ValueError(f"fault spec {spec!r} contains no clauses")
    return tuple(clauses)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault schedule.

    The decision for a coordinate is a pure function of
    ``(seed, clause, job, phase, task_id, attempt)`` — no RNG state, so
    concurrent executors and repeated runs draw identical schedules.
    """

    clauses: tuple[FaultClause, ...]
    seed: int = 0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        return cls(clauses=parse_fault_spec(spec), seed=seed)

    def _draw(
        self, clause: FaultClause, job: str, phase: str, task_id: int, attempt: int
    ) -> float:
        token = f"{self.seed}:{clause.index}:{job}:{phase}:{task_id}:{attempt}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def faults_for(
        self, job: str, phase: str, task_id: int, attempt: int
    ) -> tuple[FaultClause, ...]:
        """The clauses that fire for one task attempt (possibly empty)."""
        fired = []
        for clause in self.clauses:
            if clause.phase != "*" and clause.phase != phase:
                continue
            if clause.job is not None and clause.job not in job:
                continue
            if clause.task_id is not None and clause.task_id != task_id:
                continue
            if not clause.always and attempt > 1:
                continue
            if self._draw(clause, job, phase, task_id, attempt) < clause.probability:
                fired.append(clause)
        return tuple(fired)


def _truncate_payload(payload: Any) -> Any:
    """Corrupt a map task's output: silently drop trailing records.

    Models a truncated shuffle partition.  The counters the task
    reported still claim the full record count, which is exactly what
    the runtime's shuffle-integrity validation catches.  Understands
    both shuffle bucket representations: a tuple bucket loses its last
    pair, a :class:`~repro.mapreduce.types.ColumnarBucket` its last
    key/value row — so corrupt-fault coverage does not regress when the
    columnar plane is on.
    """
    from repro.mapreduce.spill import SpilledBucket
    from repro.mapreduce.types import ColumnarBucket

    columnar_like = (ColumnarBucket, SpilledBucket)
    if not isinstance(payload, list) or not payload:
        return payload
    if all(
        isinstance(bucket, (list, *columnar_like)) for bucket in payload
    ) and any(isinstance(bucket, columnar_like) for bucket in payload):
        # Pre-partitioned bucket payload with at least one columnar (or
        # spilled-columnar) bucket: truncate the last non-empty bucket
        # in its own representation.  A spilled bucket is rehydrated
        # and truncated in heap — the count mismatch against the task's
        # counters is what integrity validation catches either way.
        for pos in range(len(payload) - 1, -1, -1):
            bucket = payload[pos]
            if len(bucket):
                corrupted = list(payload)
                corrupted[pos] = (
                    bucket.truncated()
                    if isinstance(bucket, columnar_like)
                    else bucket[:-1]
                )
                return corrupted
        return payload
    if all(isinstance(bucket, list) for bucket in payload):
        # Pre-partitioned bucket list (reduce job): truncate the last
        # non-empty partition.
        for pos in range(len(payload) - 1, -1, -1):
            if payload[pos]:
                corrupted = list(payload)
                corrupted[pos] = payload[pos][:-1]
                return corrupted
        return payload
    # Map-only job: a flat pair list.
    return payload[:-1]


def chaos_call(
    faults: Sequence[FaultClause], fn: Callable[..., Any], args: tuple
) -> Any:
    """Execute one task attempt under the given faults.

    Module-level (not a closure) so wrapped calls stay picklable for
    the process executor.  Order: delays first (stragglers), then
    injected errors, then output corruption of a completed attempt.
    The injected delay is folded into the attempt's reported elapsed
    time — a straggler looks slow to the task-timeout policy even on
    the serial executor, which enforces the limit post-hoc.
    """
    delayed_s = 0.0
    for clause in faults:
        if clause.kind == DELAY and clause.delay_ms > 0:
            time.sleep(clause.delay_ms / 1000.0)
            delayed_s += clause.delay_ms / 1000.0
    for clause in faults:
        if clause.kind == ERROR:
            raise ChaosError(f"injected fault [{clause.describe()}]")
    result = fn(*args)
    corrupt = any(clause.kind == CORRUPT for clause in faults)
    if (corrupt or delayed_s) and isinstance(result, tuple) and len(result) == 3:
        payload, counters, elapsed = result
        if corrupt:
            payload = _truncate_payload(payload)
        result = (payload, counters, elapsed + delayed_s)
    return result


class ChaosExecutor(Executor):
    """Wraps any executor, injecting the plan's faults into attempts.

    Everything except the wrapping hooks delegates to the inner
    backend, so scheduling, pooling and outcome ordering are untouched.
    Speculative duplicate attempts are dispatched with ``clean=True``
    and run fault-free — they model re-execution on a fresh node.
    """

    def __init__(
        self,
        inner: Executor,
        plan: FaultPlan,
        events: EventLog | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.events = events

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"chaos+{self.inner.name}"

    @property
    def slot_lease(self):  # type: ignore[override]
        """Delegates to the wrapped backend: ``run_batch``/``make_pool``
        run there, so the lease must live there too — and the scheduler
        may bind it before or after chaos wrapping."""
        return self.inner.slot_lease

    @slot_lease.setter
    def slot_lease(self, lease) -> None:
        self.inner.slot_lease = lease

    def bind_events(self, events: EventLog) -> None:
        """Late-bind the event log injected faults are announced on."""
        self.events = events

    def _announce(
        self,
        faults: Sequence[FaultClause],
        job: str,
        phase: str,
        task_id: int,
        attempt: int,
    ) -> None:
        if self.events is None:
            return
        for clause in faults:
            self.events.emit(
                EventKind.FAULT_INJECTED,
                job,
                phase=phase,
                task_id=task_id,
                attempt=attempt,
                error=clause.describe(),
            )

    # -- wrapping hooks --------------------------------------------------

    def wrap_calls(
        self,
        fn: Callable[..., Any],
        calls: Sequence[tuple],
        *,
        job: str,
        phase: str,
        task_ids: Sequence[int],
    ) -> tuple[Callable[..., Any], Sequence[tuple]]:
        wrapped: list[tuple] = []
        any_fault = False
        for task_id, args in zip(task_ids, calls):
            faults = self.plan.faults_for(job, phase, task_id, 1)
            if faults:
                any_fault = True
                self._announce(faults, job, phase, task_id, 1)
            wrapped.append((faults, fn, args))
        if not any_fault:
            return fn, calls
        return chaos_call, wrapped

    def wrap_call(
        self,
        fn: Callable[..., Any],
        args: tuple,
        *,
        job: str,
        phase: str,
        task_id: int,
        attempt: int,
        clean: bool = False,
    ) -> tuple[Callable[..., Any], tuple]:
        if clean:
            return fn, args
        faults = self.plan.faults_for(job, phase, task_id, attempt)
        if not faults:
            return fn, args
        self._announce(faults, job, phase, task_id, attempt)
        return chaos_call, (faults, fn, args)

    # -- delegation ------------------------------------------------------

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[tuple]
    ) -> list[TaskOutcome]:
        return self.inner.run_batch(fn, calls)

    def make_pool(self):
        return self.inner.make_pool()

    @property
    def max_workers(self) -> int:
        return getattr(self.inner, "max_workers", 1)
