"""Figure 6: quality of BoW (Light/MVB) vs P3C+-MR (Light/MVB).

The full 12-panel grid: cluster counts {3, 5, 7} x noise levels
{0, 5, 10, 20} %, E4SC over a growing DB-size sweep for four
algorithms.  Paper shape: the Light variants beat their MVB
counterparts; P3C+-MR-Light's quality holds (or improves) with growing
size while the others degrade; BoW degrades fastest.
"""

from __future__ import annotations

from repro.experiments.configs import QUICK_SCALE, ExperimentScale
from repro.experiments.runner import (
    SweepRow,
    algorithm_registry,
    format_table,
    make_dataset,
    run_cell,
)

#: The four algorithms of Figure 6, in the paper's legend order.
FIGURE6_ALGORITHMS = ("BoW (Light)", "BoW (MVB)", "MR (Light)", "MR (MVB)")


def run(
    scale: ExperimentScale = QUICK_SCALE,
    algorithms: tuple[str, ...] = FIGURE6_ALGORITHMS,
    num_clusters: tuple[int, ...] | None = None,
    noise_levels: tuple[float, ...] | None = None,
) -> list[SweepRow]:
    num_clusters = num_clusters or scale.num_clusters
    noise_levels = noise_levels or scale.noise_levels
    registry = algorithm_registry(
        samples_per_reducer=scale.samples_per_reducer
    )
    rows: list[SweepRow] = []
    for k in num_clusters:
        for noise in noise_levels:
            for n in scale.sizes:
                dataset = make_dataset(n, scale.dims, k, noise, scale.seed)
                for name in algorithms:
                    rows.append(run_cell(name, registry[name], dataset))
    return rows


def render(rows: list[SweepRow]) -> str:
    panels: dict[tuple[int, float], list[SweepRow]] = {}
    for row in rows:
        panels.setdefault((row.num_clusters, row.noise), []).append(row)

    blocks: list[str] = ["Figure 6 — E4SC of BoW and P3C+-MR variants"]
    for (k, noise), panel_rows in sorted(panels.items()):
        sizes = sorted({row.n for row in panel_rows})
        table_rows = []
        for name in FIGURE6_ALGORITHMS:
            series = {
                row.n: row.e4sc for row in panel_rows if row.algorithm == name
            }
            table_rows.append([name] + [series.get(n, float("nan")) for n in sizes])
        blocks.append(
            f"\n({k} clusters, {noise:.0%} noise)\n"
            + format_table(["algorithm"] + [str(n) for n in sizes], table_rows)
        )
    blocks.append(
        "\nPaper shape: the exact MR algorithms beat the approximate BoW "
        "per variant, and BoW degrades as size (and its partition count) "
        "grows. Note: the paper's Light-beats-MVB ordering arises from "
        "the blurring effect at cluster-scale n (>= 10^6) and is not "
        "expected at this scaled-down size; at laptop scale the EM "
        "refinement still pays off (see EXPERIMENTS.md)."
    )
    return "\n".join(blocks)


def main(
    scale: ExperimentScale = QUICK_SCALE,
    num_clusters: tuple[int, ...] | None = None,
    noise_levels: tuple[float, ...] | None = None,
) -> str:
    return render(
        run(scale, num_clusters=num_clusters, noise_levels=noise_levels)
    )


if __name__ == "__main__":
    print(main())
