"""Consolidated evaluation report: every paper exhibit in one run.

``python -m repro.experiments.report`` (or the ``report`` experiment in
the CLI) executes every harness at a configurable scale and writes one
text document with all regenerated tables — the full Section 7 in a
single artefact.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from repro.experiments import (
    billion,
    blurring,
    colon,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    theta,
)
from repro.experiments.configs import QUICK_SCALE, ExperimentScale

#: Exhibit name -> callable returning the rendered table.
_SECTIONS: dict[str, Callable[[ExperimentScale], str]] = {
    "figure1": lambda scale: figure1.main(),
    "figure2": lambda scale: figure2.main(),
    "figure3": lambda scale: figure3.main(),
    "figure4": lambda scale: figure4.main(scale),
    "figure5": lambda scale: figure5.main(
        sizes=(1_500, scale.sizes[-1]), dims=scale.dims
    ),
    "figure6": lambda scale: figure6.main(
        scale, num_clusters=(3, 5), noise_levels=(0.0, 0.10)
    ),
    "figure7": lambda scale: figure7.main(
        ExperimentScale(
            name="report-figure7",
            sizes=scale.sizes[:2],
            dims=min(scale.dims, 15),
            samples_per_reducer=scale.samples_per_reducer,
            seed=scale.seed,
        )
    ),
    "theta": lambda scale: theta.main(),
    "colon": lambda scale: colon.main(seeds=(7, 11, 23)),
    "billion": lambda scale: billion.main(scaled_n=4_000, dims=30),
    "blurring": lambda scale: blurring.main(),
}


def run(
    scale: ExperimentScale = QUICK_SCALE,
    sections: tuple[str, ...] | None = None,
) -> str:
    """Run the selected (default: all) exhibits and return the report."""
    chosen = sections or tuple(_SECTIONS)
    unknown = set(chosen) - set(_SECTIONS)
    if unknown:
        raise ValueError(f"unknown report sections: {sorted(unknown)}")
    blocks = [
        "P3C+-MR reproduction — consolidated evaluation report",
        f"scale profile: {scale.name} "
        f"(sizes {scale.sizes}, {scale.dims} dims, seed {scale.seed})",
        "=" * 70,
    ]
    for name in chosen:
        started = time.perf_counter()
        text = _SECTIONS[name](scale)
        elapsed = time.perf_counter() - started
        blocks.append(f"\n## {name} ({elapsed:.1f}s)\n\n{text}")
    return "\n".join(blocks)


def main(
    output_path: str | Path | None = None,
    scale: ExperimentScale = QUICK_SCALE,
) -> str:
    report = run(scale)
    if output_path is not None:
        Path(output_path).write_text(report + "\n")
    return report


if __name__ == "__main__":
    print(main())
