"""Section 6's blurring effect, demonstrated at laptop scale.

The paper's argument for P3C+-MR-Light: data points ``x-`` and ``x+``
that match a cluster's centre on all relevant attributes except one
(where they sit at 0 and 1) are assigned to the cluster by EM, survive
outlier detection, and stretch the tightened interval on the blurred
attribute to ``[0, 1]``.  The probability of such points grows with the
data set size — which is why Figure 6 shows Light overtaking the full
pipeline only at cluster-scale n.

This harness *injects* the adversarial points explicitly, making the
mechanism observable at any size: it measures, per algorithm, the width
of the found interval on the blurred attribute relative to the hidden
cluster's true width.  Expected shape: the full pipeline's interval is
stretched by the injected points; Light's interval — computed from
support sets, which the blurring points do not belong to — stays tight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.data import GeneratorConfig, SyntheticDataset, generate_synthetic
from repro.experiments.runner import format_table


@dataclass
class BlurringRow:
    algorithm: str
    blurred_points: int
    width_ratio: float  # found width / true width on the blurred attribute


def inject_blurring_points(
    dataset: SyntheticDataset,
    per_cluster: int,
    seed: int = 0,
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Append Section 6's x-/x+ points for every hidden cluster.

    Each injected point equals the cluster's interval centres on every
    relevant attribute except one (the *blurred* attribute, chosen as
    the cluster's first), where it alternates between 0 and 1.
    Returns the augmented matrix and the (cluster, blurred attribute)
    pairs.
    """
    rng = np.random.default_rng(seed)
    rows = []
    blurred: list[tuple[int, int]] = []
    for cid, cluster in enumerate(dataset.hidden_clusters):
        intervals = cluster.signature.intervals
        blur_attr = intervals[0].attribute
        blurred.append((cid, blur_attr))
        for i in range(per_cluster):
            point = rng.uniform(size=dataset.data.shape[1])
            for interval in intervals:
                point[interval.attribute] = (
                    interval.lower + interval.upper
                ) / 2.0
            point[blur_attr] = 0.0 if i % 2 == 0 else 1.0
            rows.append(point)
    if not rows:
        return dataset.data, blurred
    return np.vstack([dataset.data, np.array(rows)]), blurred


def _width_ratio(result, dataset: SyntheticDataset, blurred) -> float:
    """Mean found/true width on the blurred attributes, over hidden
    clusters matched to their best found cluster by member overlap."""
    ratios = []
    for (cid, blur_attr) in blurred:
        hidden = dataset.hidden_clusters[cid]
        true_interval = hidden.signature.interval_on(blur_attr)
        best, best_overlap = None, 0
        for cluster in result.clusters:
            overlap = len(np.intersect1d(cluster.members, hidden.members))
            if overlap > best_overlap:
                best, best_overlap = cluster, overlap
        if best is None or best.signature is None:
            continue
        found_interval = best.signature.interval_on(blur_attr)
        if found_interval is None:
            continue
        ratios.append(found_interval.width / true_interval.width)
    return float(np.mean(ratios)) if ratios else float("nan")


def run(
    n: int = 3_000,
    dims: int = 15,
    num_clusters: int = 3,
    per_cluster_counts: tuple[int, ...] = (0, 12, 40),
    seed: int = 21,
) -> list[BlurringRow]:
    rows: list[BlurringRow] = []
    base = generate_synthetic(
        GeneratorConfig(
            n=n,
            d=dims,
            num_clusters=num_clusters,
            noise_fraction=0.05,
            max_cluster_dims=min(6, dims),
            seed=seed,
        )
    )
    for per_cluster in per_cluster_counts:
        data, blurred = inject_blurring_points(base, per_cluster, seed)
        algorithms = {
            "MR (Naive)": P3CPlus(P3CPlusConfig(outlier_method="naive")),
            "MR (MVB)": P3CPlus(P3CPlusConfig(outlier_method="mvb")),
            "MR (Light)": P3CPlusLight(),
        }
        for name, algorithm in algorithms.items():
            result = algorithm.fit(data)
            rows.append(
                BlurringRow(
                    name, per_cluster, _width_ratio(result, base, blurred)
                )
            )
    return rows


def render(rows: list[BlurringRow]) -> str:
    counts = sorted({row.blurred_points for row in rows})
    table_rows = []
    for name in ("MR (Naive)", "MR (MVB)", "MR (Light)"):
        series = {
            row.blurred_points: row.width_ratio
            for row in rows
            if row.algorithm == name
        }
        table_rows.append([name] + [round(series[c], 2) for c in counts])
    table = format_table(
        ["algorithm"] + [f"{c} blur pts/cluster" for c in counts], table_rows
    )
    return "\n".join(
        [
            "Section 6 — the blurring effect (found/true interval width "
            "on the blurred attribute; 1.0 = tight)",
            table,
            "",
            "Expected shape: the naive detector's intervals stretch "
            "badly (masking: the blurring points inflate the very "
            "variance estimate meant to expose them); MVB resists but "
            "still drifts; Light's support-set intervals stay tight — "
            "the mechanism behind Light's advantage at cluster-scale n.",
        ]
    )


def main() -> str:
    return render(run())


if __name__ == "__main__":
    print(main())
