"""Shared experiment configuration: the paper's grid at laptop scale.

The paper sweeps data sets of 10^4 ... 5 * 10^7 points (plus one 10^9
run) with 50 dimensions on a 112-reducer Hadoop cluster.  This
reproduction keeps the *grid shape* — number of clusters {3, 5, 7},
noise {0, 5, 10, 20} %, a geometric size sweep — and scales the sizes
so the full harness finishes on one core.  ``QUICK_SCALE`` drives the
benchmark suite; ``FULL_SCALE`` is the bigger sweep for an unattended
run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Size/dimension scaling of one experiment profile."""

    name: str
    sizes: tuple[int, ...]
    dims: int
    num_clusters: tuple[int, ...] = (3, 5, 7)
    noise_levels: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20)
    samples_per_reducer: int = 1_000
    seed: int = 42

    #: The paper sizes each scaled size stands in for (documentation
    #: only; printed next to the scaled size in harness output).
    paper_sizes: tuple[int, ...] = ()


QUICK_SCALE = ExperimentScale(
    name="quick",
    sizes=(1_000, 2_500, 5_000),
    dims=20,
    paper_sizes=(10_000, 1_000_000, 50_000_000),
)

FULL_SCALE = ExperimentScale(
    name="full",
    sizes=(1_000, 2_500, 5_000, 10_000, 25_000),
    dims=50,
    paper_sizes=(10_000, 100_000, 1_000_000, 10_000_000, 50_000_000),
)

#: Paper Section 7.3 parameter defaults.
ALPHA_CHI2 = 0.001
ALPHA_POISSON = 0.01
THETA_CC = 0.35

#: Figure 5's Poisson-threshold sweep.
FIGURE5_THRESHOLDS = (
    1e-140,
    1e-100,
    1e-80,
    1e-60,
    1e-40,
    1e-20,
    1e-5,
    1e-3,
)
