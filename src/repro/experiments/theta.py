"""Section 7.3's theta_cc selection sweep.

The paper picks theta_cc by running P3C+-MR over every data set with
theta_cc in [0.05, 0.5] and taking the *median of the per-data-set
optima* (= 0.35 on their workloads).  This harness reproduces that
procedure on a configurable grid of scaled data sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

import numpy as np

from repro.core.p3c_plus import P3CPlusConfig, P3CPlusLight
from repro.eval import e4sc_score
from repro.experiments.runner import format_table, make_dataset

DEFAULT_THETAS = tuple(round(t, 2) for t in np.arange(0.05, 0.51, 0.05))


@dataclass
class ThetaSweepResult:
    per_dataset_scores: dict[tuple[int, int, float], dict[float, float]]
    per_dataset_optimum: dict[tuple[int, int, float], float]
    selected_theta: float


def run(
    sizes: tuple[int, ...] = (1_000, 2_500),
    dims: int = 20,
    num_clusters: tuple[int, ...] = (3, 5),
    noise_levels: tuple[float, ...] = (0.05, 0.20),
    thetas: tuple[float, ...] = DEFAULT_THETAS,
    seed: int = 42,
) -> ThetaSweepResult:
    scores: dict[tuple[int, int, float], dict[float, float]] = {}
    optima: dict[tuple[int, int, float], float] = {}
    for n in sizes:
        for k in num_clusters:
            for noise in noise_levels:
                dataset = make_dataset(n, dims, k, noise, seed)
                truth = dataset.ground_truth_clusters()
                cell: dict[float, float] = {}
                for theta in thetas:
                    config = P3CPlusConfig(theta_cc=theta)
                    result = P3CPlusLight(config).fit(dataset.data)
                    cell[theta] = e4sc_score(result.clusters, truth)
                key = (n, k, noise)
                scores[key] = cell
                optima[key] = max(cell, key=lambda t: cell[t])
    return ThetaSweepResult(
        per_dataset_scores=scores,
        per_dataset_optimum=optima,
        selected_theta=float(median(optima.values())),
    )


def main() -> str:
    outcome = run()
    rows = [
        [f"n={n} k={k} noise={noise:.0%}", optimum]
        for (n, k, noise), optimum in sorted(outcome.per_dataset_optimum.items())
    ]
    return "\n".join(
        [
            "Section 7.3 — theta_cc selection (median of per-data-set optima)",
            format_table(["data set", "optimal theta_cc"], rows),
            "",
            f"selected theta_cc = {outcome.selected_theta:.2f} "
            "(paper: 0.35 on its cluster-scale workloads)",
        ]
    )


if __name__ == "__main__":
    print(main())
