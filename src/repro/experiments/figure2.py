"""Figure 2: the redundant-signature example, reproduced numerically.

Two 50-point clusters — C1 in subspace {a1, a3}, C2 in {a1, a2} — whose
intersecting region spawns a third 2-signature S3 in {a2, a3}.  S3
passes the Poisson test (support ~10 vs expected 1) but is redundant:
its interestingness ratio is below those of S1 and S2, and its
intervals are covered by theirs, so the redundancy filter removes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.redundancy import filter_redundant, interestingness
from repro.core.stats import poisson_deviation_significant
from repro.core.types import Interval, Signature


@dataclass(frozen=True)
class Figure2Scenario:
    """The worked example with the paper's numbers."""

    n: int
    signatures: dict[str, Signature]
    supports: dict[Signature, int]


def build_scenario() -> Figure2Scenario:
    """The paper's setting: n = 100, interval widths 0.1, supports
    Supp(S1) = Supp(S2) = 50 and Supp(S3) = 50*0.1 + 50*0.1 = 10."""
    i1 = Interval(0, 0.2, 0.3)  # a1 interval of C1
    i2 = Interval(0, 0.6, 0.7)  # a1 interval of C2
    i3 = Interval(2, 0.4, 0.5)  # a3 interval of C1
    i4 = Interval(1, 0.4, 0.5)  # a2 interval of C2
    s1 = Signature([i1, i3])
    s2 = Signature([i2, i4])
    s3 = Signature([i4, i3])
    supports = {s1: 50, s2: 50, s3: 10}
    return Figure2Scenario(
        n=100, signatures={"S1": s1, "S2": s2, "S3": s3}, supports=supports
    )


def run() -> dict[str, object]:
    scenario = build_scenario()
    s1 = scenario.signatures["S1"]
    s2 = scenario.signatures["S2"]
    s3 = scenario.signatures["S3"]
    supports = scenario.supports
    n = scenario.n
    kept = filter_redundant(supports, n)
    return {
        "s3_passes_poisson": poisson_deviation_significant(
            supports[s3], s3.expected_support(n), alpha=1e-6
        ),
        "ratios": {
            name: interestingness(sig, supports[sig], n)
            for name, sig in scenario.signatures.items()
        },
        "kept": kept,
        "s3_removed": s3 not in kept,
        "s1_kept": s1 in kept,
        "s2_kept": s2 in kept,
    }


def main() -> str:
    outcome = run()
    lines = ["Figure 2 — redundant signature S3 in the {a2, a3} subspace"]
    lines.append(
        f"S3 passes the Poisson test at alpha=1e-6: "
        f"{outcome['s3_passes_poisson']}"
    )
    for name, ratio in outcome["ratios"].items():
        lines.append(f"  interestingness({name}) = {ratio:.1f}")
    lines.append(
        f"redundancy filter removes S3: {outcome['s3_removed']}; "
        f"keeps S1: {outcome['s1_kept']}, S2: {outcome['s2_kept']}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
