"""Figure 5: effect of redundancy filtering and effect-size statistics.

For a sweep of Poisson thresholds (1e-140 ... 1e-3) the harness counts
the cluster cores produced by

- 'Poisson'  — the original significance test alone, and
- 'Combined' — Poisson + the theta_cc effect-size test,

both before (Figures 5a/5c) and after (5b/5d) redundancy filtering, on
data sets with 5 hidden clusters and 20 % noise.  Paper shape: without
the filter, 'Poisson' overestimates wildly and the overestimation
starts at smaller thresholds for larger data; 'Combined' stagnates far
lower; with the filter both stabilise at the true cluster count, with
'Combined' exactly correct over the widest threshold range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.p3c_plus import P3CPlusConfig, generate_cluster_cores
from repro.experiments.configs import FIGURE5_THRESHOLDS, THETA_CC
from repro.experiments.runner import format_table, make_dataset


@dataclass
class Figure5Row:
    n: int
    threshold: float
    test: str  # 'Poisson' | 'Combined'
    cores_no_filter: int
    cores_filtered: int


def run(
    sizes: tuple[int, ...] = (2_000, 20_000),
    dims: int = 20,
    num_clusters: int = 5,
    noise: float = 0.20,
    thresholds: tuple[float, ...] = FIGURE5_THRESHOLDS,
    seed: int = 42,
) -> list[Figure5Row]:
    rows: list[Figure5Row] = []
    for n in sizes:
        dataset = make_dataset(n, dims, num_clusters, noise, seed)
        for threshold in thresholds:
            for test, theta in (("Poisson", None), ("Combined", THETA_CC)):
                config = P3CPlusConfig(
                    poisson_alpha=threshold,
                    theta_cc=theta,
                    redundancy_filter=True,
                )
                _, diagnostics = generate_cluster_cores(dataset.data, config)
                rows.append(
                    Figure5Row(
                        n=n,
                        threshold=threshold,
                        test=test,
                        cores_no_filter=diagnostics["cores_before_redundancy"],
                        cores_filtered=diagnostics["cores_after_redundancy"],
                    )
                )
    return rows


def render(rows: list[Figure5Row], num_clusters: int = 5) -> str:
    table_rows = [
        [row.n, f"{row.threshold:.0e}", row.test, row.cores_no_filter, row.cores_filtered]
        for row in rows
    ]
    table = format_table(
        ["DB size", "threshold", "test", "#cores (no filter)", "#cores (filtered)"],
        table_rows,
    )
    return "\n".join(
        [
            "Figure 5 — redundancy filtering and effect-size statistics "
            f"(optimal = {num_clusters} clusters)",
            table,
            "",
            "Paper shape: 'Poisson' without filtering overestimates for "
            "loose thresholds; 'Combined' stagnates near the optimum; "
            "with redundancy filtering both land at the true count.",
        ]
    )


def main(
    sizes: tuple[int, ...] = (2_000, 20_000),
    dims: int = 20,
    num_clusters: int = 5,
    thresholds: tuple[float, ...] = FIGURE5_THRESHOLDS,
) -> str:
    rows = run(
        sizes=sizes, dims=dims, num_clusters=num_clusters, thresholds=thresholds
    )
    return render(rows, num_clusters)


if __name__ == "__main__":
    print(main())
