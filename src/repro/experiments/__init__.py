"""Experiment harnesses: one module per paper exhibit.

Every module exposes ``run(...)`` returning structured rows and a
``main()`` that prints the exhibit's table; the ``benchmarks/`` tree
wraps these in pytest-benchmark entries.  Sizes are scaled from the
paper's cluster workloads to laptop proportions (see DESIGN.md,
substitutions); the *shape* of every exhibit — orderings, trends,
crossovers — is what the harnesses reproduce.
"""

from repro.experiments.configs import FULL_SCALE, QUICK_SCALE, ExperimentScale

__all__ = ["ExperimentScale", "FULL_SCALE", "QUICK_SCALE"]
