"""Section 7.6: P3C+ vs original P3C on the colon-cancer data set.

The paper reports 71 % label accuracy for P3C+ against 67 % for the
original P3C on UCI 'colon cancer' (62 samples x 2000 genes).  The real
file is not redistributable (and this environment is offline), so the
harness runs both algorithms on the synthetic colon-like stand-in of
:func:`repro.data.make_colon_like`, averaged over several seeds.

What is and is not reproduced here (also see DESIGN.md):

- reproduced: the *code path* (both algorithms on a tiny-n, huge-d,
  two-class data set, scored by majority-label accuracy) and the
  magnitude band of both accuracies;
- not guaranteed: the exact P3C+ > P3C ordering.  The paper's gap is
  4 points (~2.5 samples of 62); on a synthetic substitute that is
  within seed noise, because P3C+'s statistical machinery (effect size,
  redundancy filtering) is designed for *huge* n and has no leverage at
  n = 62, where a pure sampling fluke easily reaches an effect size of
  1.0.  The harness reports the per-seed results and the mean ordering
  honestly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.p3c import P3C
from repro.core.p3c_plus import P3CPlus
from repro.data import make_colon_like
from repro.eval import label_accuracy
from repro.experiments.runner import format_table

PAPER_P3C_PLUS_ACCURACY = 0.71
PAPER_P3C_ACCURACY = 0.67
DEFAULT_SEEDS = (7, 11, 23, 31, 43)


@dataclass
class ColonResult:
    per_seed: list[tuple[int, float, float]]  # (seed, p3c+ acc, p3c acc)

    @property
    def p3c_plus_mean(self) -> float:
        return float(np.mean([plus for _, plus, _ in self.per_seed]))

    @property
    def p3c_mean(self) -> float:
        return float(np.mean([p3c for _, _, p3c in self.per_seed]))

    @property
    def ordering_reproduced(self) -> bool:
        return self.p3c_plus_mean >= self.p3c_mean


def run(
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    n_samples: int = 62,
    n_genes: int = 2000,
) -> ColonResult:
    per_seed: list[tuple[int, float, float]] = []
    for seed in seeds:
        dataset = make_colon_like(
            n_samples=n_samples, n_genes=n_genes, seed=seed
        )
        plus = label_accuracy(P3CPlus().fit(dataset.data), dataset.labels)
        base = label_accuracy(P3C().fit(dataset.data), dataset.labels)
        per_seed.append((seed, plus, base))
    return ColonResult(per_seed=per_seed)


def render(outcome: ColonResult, n_genes: int = 2000) -> str:
    table = format_table(
        ["seed", "P3C+ accuracy", "P3C accuracy"],
        [[seed, plus, base] for seed, plus, base in outcome.per_seed],
    )
    return "\n".join(
        [
            f"Section 7.6 — colon cancer (synthetic stand-in, 62 x {n_genes})",
            table,
            "",
            f"mean: P3C+ {outcome.p3c_plus_mean:.2%}, "
            f"P3C {outcome.p3c_mean:.2%} "
            f"(paper, real data: {PAPER_P3C_PLUS_ACCURACY:.0%} vs "
            f"{PAPER_P3C_ACCURACY:.0%})",
            f"mean ordering P3C+ >= P3C: {outcome.ordering_reproduced} "
            "(on the synthetic substitute the paper's 4-point gap is "
            "within seed noise; see module docstring)",
        ]
    )


def main(seeds: tuple[int, ...] = DEFAULT_SEEDS, n_genes: int = 2000) -> str:
    return render(run(seeds=seeds, n_genes=n_genes), n_genes)


if __name__ == "__main__":
    print(main())
