"""Figure 7: runtime vs DB size for all five algorithms.

Two complementary views:

- **measured** — wall-clock of the real drivers (the MR drivers and
  BoW run against the in-process MapReduce runtime) over the scaled
  size sweep;
- **projected** — the calibrated cluster cost model replays each
  algorithm's measured *job structure* (number of MR jobs, relative
  per-record work) at the paper's sizes (10^4 ... 5*10^7), on the
  paper's 112-slot cluster.

Paper shape: BoW variants and MR (Light) scale gently; P3C+-MR
(naive/MVB) is slowest (more jobs + EM iterations); MVB costs 10-20 %
over naive; runtimes are sub-linear until the cluster saturates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from math import ceil

from repro.baselines import BoW, BoWConfig
from repro.core.p3c_plus import P3CPlusConfig
from repro.experiments.configs import QUICK_SCALE, ExperimentScale
from repro.experiments.runner import format_table, make_dataset
from repro.mapreduce.costmodel import ClusterCostModel
from repro.mr import P3CPlusMR, P3CPlusMRConfig, P3CPlusMRLight

#: Paper sizes projected by the cost model.
PAPER_SIZES = (10_000, 100_000, 1_000_000, 5_000_000, 10_000_000, 50_000_000)


@dataclass
class RuntimeRow:
    algorithm: str
    n: int
    seconds: float
    mr_jobs: int


def _mr_algorithms(scale: ExperimentScale) -> dict[str, object]:
    mr_config = P3CPlusMRConfig(num_splits=8)
    return {
        "BoW (Light)": lambda: BoW(
            bow_config=BoWConfig(
                variant="light", samples_per_reducer=scale.samples_per_reducer
            )
        ),
        "BoW (MVB)": lambda: BoW(
            bow_config=BoWConfig(
                variant="mvb", samples_per_reducer=scale.samples_per_reducer
            )
        ),
        "MR (Light)": lambda: P3CPlusMRLight(mr_config=mr_config),
        "MR (MVB)": lambda: P3CPlusMR(
            P3CPlusConfig(outlier_method="mvb"), mr_config
        ),
        "MR (Naive)": lambda: P3CPlusMR(
            P3CPlusConfig(outlier_method="naive"), mr_config
        ),
    }


def run_measured(
    scale: ExperimentScale = QUICK_SCALE,
    num_clusters: int = 5,
    noise: float = 0.10,
) -> list[RuntimeRow]:
    rows: list[RuntimeRow] = []
    algorithms = _mr_algorithms(scale)
    for n in scale.sizes:
        dataset = make_dataset(n, scale.dims, num_clusters, noise, scale.seed)
        for name, factory in algorithms.items():
            started = time.perf_counter()
            result = factory().fit(dataset.data)
            elapsed = time.perf_counter() - started
            rows.append(
                RuntimeRow(
                    algorithm=name,
                    n=n,
                    seconds=elapsed,
                    mr_jobs=int(result.metadata.get("mr_jobs", 1)),
                )
            )
    return rows


#: Relative per-record map cost of one job of each algorithm (RSSC
#: support counting and EM E-steps touch every candidate/component per
#: record, a plain histogram pass does not).
_JOB_MULTIPLIER = {
    "BoW (Light)": 1.0,
    "BoW (MVB)": 1.0,
    "MR (Light)": 1.3,
    "MR (MVB)": 1.6,
    "MR (Naive)": 1.5,
}

#: Per-record plug-in cost inside a BoW reducer, relative to a map scan
#: (the Light plug-in is a few scans; the MVB plug-in adds EM + OD).
_BOW_PLUGIN_MULTIPLIER = {"BoW (Light)": 6.0, "BoW (MVB)": 14.0}


def project_runtime(
    algorithm: str,
    n: int,
    mr_jobs: int,
    model: ClusterCostModel,
    samples_per_reducer: int = 100_000,
) -> float:
    """Cost-model projection of one algorithm at paper scale."""
    if algorithm.startswith("BoW"):
        scan = model.job_cost(n, shuffle_records=n)
        partitions = max(1, ceil(n / samples_per_reducer))
        waves = ceil(partitions / model.reduce_slots)
        plugin = (
            waves
            * samples_per_reducer
            * model.map_record_cost_s
            * _BOW_PLUGIN_MULTIPLIER[algorithm]
        )
        return scan.total_s + plugin
    multiplier = _JOB_MULTIPLIER[algorithm]
    per_job = model.scan_job(n, multiplier=multiplier)
    return mr_jobs * per_job.total_s


def run_projected(
    measured: list[RuntimeRow],
    sizes: tuple[int, ...] = PAPER_SIZES,
    model: ClusterCostModel | None = None,
) -> list[RuntimeRow]:
    model = model or ClusterCostModel()
    # Job counts from the largest measured run of each algorithm.
    jobs: dict[str, int] = {}
    for row in sorted(measured, key=lambda r: r.n):
        jobs[row.algorithm] = row.mr_jobs
    rows: list[RuntimeRow] = []
    for n in sizes:
        for algorithm, mr_jobs in jobs.items():
            rows.append(
                RuntimeRow(
                    algorithm=algorithm,
                    n=n,
                    seconds=project_runtime(algorithm, n, mr_jobs, model),
                    mr_jobs=mr_jobs,
                )
            )
    return rows


def _series_table(rows: list[RuntimeRow], title: str) -> str:
    sizes = sorted({row.n for row in rows})
    names = sorted({row.algorithm for row in rows})
    table_rows = []
    for name in names:
        series = {row.n: row.seconds for row in rows if row.algorithm == name}
        table_rows.append(
            [name] + [round(series.get(n, float("nan")), 2) for n in sizes]
        )
    return title + "\n" + format_table(
        ["algorithm"] + [f"{n:,}" for n in sizes], table_rows
    )


def main(scale: ExperimentScale = QUICK_SCALE) -> str:
    measured = run_measured(scale)
    projected = run_projected(measured)
    return "\n\n".join(
        [
            "Figure 7 — runtime (seconds) vs DB size",
            _series_table(measured, "Measured (scaled sizes, in-process runtime):"),
            _series_table(
                projected, "Projected (paper sizes, 112-slot cost model):"
            ),
            "Paper shape: MR (MVB/Naive) slowest; MVB ~10-20% over Naive; "
            "BoW and MR (Light) fastest and near-linear.",
        ]
    )


if __name__ == "__main__":
    print(main())
