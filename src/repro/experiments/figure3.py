"""Figure 3: the RSSC binning illustrated on the paper's example.

The paper's figure shows a binning ``B_a`` of one attribute with four
signatures: the interval bounds partition the axis into bins, each bin
carries a bit vector ``v_{a,b}`` whose bit ``j`` is 0 exactly when a
point in that bin cannot belong to signature ``S_j``, and a signature
without an interval on ``a`` (S2 in the figure) keeps bit 1 everywhere.

This harness builds an equivalent four-signature example, renders the
per-cell bit vectors, and checks the figure's defining properties.
"""

from __future__ import annotations

from repro.core.types import Interval, Signature
from repro.mr.rssc import RSSC


def build_example() -> tuple[RSSC, list[Signature]]:
    """Four signatures; S2 (index 1) has no interval on attribute 0."""
    signatures = [
        Signature([Interval(0, 0.10, 0.40)]),                     # S1
        Signature([Interval(1, 0.50, 0.80)]),                     # S2 — not on a
        Signature([Interval(0, 0.30, 0.70)]),                     # S3
        Signature([Interval(0, 0.60, 0.90), Interval(1, 0.0, 0.5)]),  # S4
    ]
    return RSSC(signatures), signatures


def run() -> dict[str, object]:
    rssc, signatures = build_example()
    binning = next(
        b for b in rssc._binnings if b.attribute == 0
    )
    cells = []
    for index, mask in enumerate(binning.cell_masks):
        bits = format(mask, f"0{len(signatures)}b")[::-1]  # bit j = S_j
        cells.append((index, bits))
    s2_bit_always_one = all(bits[1] == "1" for _, bits in cells)
    return {
        "boundaries": [float(b) for b in binning.boundaries],
        "cells": cells,
        "s2_bit_always_one": s2_bit_always_one,
    }


def main() -> str:
    outcome = run()
    lines = [
        "Figure 3 — RSSC binning B_a with per-cell bit vectors "
        "(bit j = signature S_{j+1}; cells alternate boundary points "
        "and open intervals)",
        f"boundaries on attribute a: {outcome['boundaries']}",
    ]
    for index, bits in outcome["cells"]:
        lines.append(f"  cell {index:2d}: v = {bits}")
    lines.append(
        "S2 has no interval on a, so its bit stays 1 in every cell: "
        f"{outcome['s2_bit_always_one']}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
