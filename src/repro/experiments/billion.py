"""Section 7.5.2's billion-point run: MR-Light vs BoW-Light at 10^9 x 100d.

The paper: on a 10^9-point, 100-dimension data set (~0.2 TB), BoW
(Light) needed > 9 500 s while P3C+-MR-Light finished in ~4 300 s.
This environment cannot hold 10^9 points, so the harness

1. *measures* both algorithms on a scaled data set (same generator,
   100 dimensions), confirming both complete and recording their job
   structure, and
2. *projects* both at 10^9 points with the calibrated cluster cost
   model, reproducing the headline ordering and its rough factor (~2x).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.baselines import BoW, BoWConfig
from repro.experiments.figure7 import project_runtime
from repro.experiments.runner import make_dataset
from repro.mapreduce.costmodel import ClusterCostModel
from repro.mr import P3CPlusMR, P3CPlusMRConfig, P3CPlusMRLight
from repro.obs import Observability, build_run_report

PAPER_N = 1_000_000_000
PAPER_DIMS = 100
PAPER_BOW_SECONDS = 9_500.0
PAPER_MR_LIGHT_SECONDS = 4_300.0


@dataclass
class BillionResult:
    measured_mr_light_s: float
    measured_bow_light_s: float
    measured_mr_jobs: int
    projected_mr_light_s: float
    projected_bow_light_s: float
    #: Standard run report of the measured MR-Light run (schema
    #: ``repro.obs/run-report/v1``), for the bench trajectory.
    run_report: dict | None = None

    @property
    def projected_ratio(self) -> float:
        return self.projected_bow_light_s / self.projected_mr_light_s

    @property
    def paper_ratio(self) -> float:
        return PAPER_BOW_SECONDS / PAPER_MR_LIGHT_SECONDS


def run(
    scaled_n: int = 5_000,
    dims: int = 50,
    num_clusters: int = 5,
    noise: float = 0.10,
    seed: int = 42,
) -> BillionResult:
    dataset = make_dataset(scaled_n, dims, num_clusters, noise, seed)

    obs = Observability()
    mr_light = P3CPlusMRLight(mr_config=P3CPlusMRConfig(num_splits=8), obs=obs)
    started = time.perf_counter()
    mr_result = mr_light.fit(dataset.data)
    mr_seconds = time.perf_counter() - started

    started = time.perf_counter()
    BoW(bow_config=BoWConfig(variant="light", samples_per_reducer=1_000)).fit(
        dataset.data
    )
    bow_seconds = time.perf_counter() - started

    model = ClusterCostModel()
    mr_jobs = int(mr_result.metadata["mr_jobs"])
    report = build_run_report(
        "mr-light",
        obs=obs,
        chain=mr_light.chain,
        dataset={"n": scaled_n, "d": dims},
        result={
            "num_clusters": len(mr_result.clusters),
            "num_outliers": int(len(mr_result.outliers)),
        },
        wall_time_s=mr_seconds,
        extra={"experiment": "billion"},
    )
    return BillionResult(
        measured_mr_light_s=mr_seconds,
        measured_bow_light_s=bow_seconds,
        measured_mr_jobs=mr_jobs,
        projected_mr_light_s=project_runtime("MR (Light)", PAPER_N, mr_jobs, model),
        projected_bow_light_s=project_runtime("BoW (Light)", PAPER_N, 1, model),
        run_report=report,
    )


def render(outcome: BillionResult, scaled_n: int) -> str:
    return "\n".join(
        [
            "Section 7.5.2 — one-billion-point run (10^9 x 100 dims)",
            f"measured at scaled n={scaled_n}: "
            f"MR (Light) {outcome.measured_mr_light_s:.1f}s "
            f"({outcome.measured_mr_jobs} MR jobs), "
            f"BoW (Light) {outcome.measured_bow_light_s:.1f}s",
            f"projected at n=10^9: MR (Light) "
            f"{outcome.projected_mr_light_s:,.0f}s, BoW (Light) "
            f"{outcome.projected_bow_light_s:,.0f}s "
            f"(ratio {outcome.projected_ratio:.2f}x)",
            f"paper:            MR (Light) {PAPER_MR_LIGHT_SECONDS:,.0f}s, "
            f"BoW (Light) {PAPER_BOW_SECONDS:,.0f}s "
            f"(ratio {outcome.paper_ratio:.2f}x)",
        ]
    )


def main(scaled_n: int = 5_000, dims: int = 50) -> str:
    return render(run(scaled_n=scaled_n, dims=dims), scaled_n)


# -- optional honest-run route: execute the coreset fast path --------------


@dataclass
class CoresetExecution:
    """A real exact-vs-coreset run at scaled n, with the model's view."""

    n: int
    coreset_size: int
    measured_exact_s: float
    measured_coreset_s: float
    modelled_exact_s: float
    modelled_coreset_s: float
    chain_jobs: int

    @property
    def measured_speedup(self) -> float:
        return self.measured_exact_s / self.measured_coreset_s

    @property
    def modelled_speedup(self) -> float:
        return self.modelled_exact_s / self.modelled_coreset_s

    @property
    def coreset_model_delta(self) -> float:
        """(measured - modelled) / modelled of the coreset run."""
        return (
            self.measured_coreset_s - self.modelled_coreset_s
        ) / self.modelled_coreset_s


def run_coreset_execution(
    scaled_n: int = 50_000,
    dims: int = 8,
    coreset_size: int = 2_000,
    coreset_mode: str = "uniform",
    num_clusters: int = 3,
    noise: float = 0.10,
    seed: int = 42,
) -> CoresetExecution:
    """Execute the full pipeline exactly AND through the coreset path.

    This is the honest-run complement of the projection above: instead
    of only *pricing* the approximate pipeline with
    :meth:`~repro.mapreduce.costmodel.ClusterCostModel.coreset_chain_cost`,
    it runs both fits for real, calibrates a single-slot local cost
    model from the coreset run's own task events, and reports how far
    the model's prediction lands from the measured wall clock.
    """
    dataset = make_dataset(scaled_n, dims, num_clusters, noise, seed)

    exact = P3CPlusMR(mr_config=P3CPlusMRConfig(num_splits=8))
    started = time.perf_counter()
    exact_result = exact.fit(dataset.data)
    exact_s = time.perf_counter() - started

    approx = P3CPlusMR(
        mr_config=P3CPlusMRConfig(
            num_splits=8,
            coreset_size=coreset_size,
            coreset_mode=coreset_mode,
        )
    )
    started = time.perf_counter()
    approx_result = approx.fit(dataset.data)
    coreset_s = time.perf_counter() - started

    # Price both runs with a model fitted to THIS machine: one slot
    # (the local chain runs tasks in-process), no per-job scheduler
    # overhead, per-record costs calibrated from the coreset run's
    # task-finish events.
    local = replace(
        ClusterCostModel(), map_slots=1, reduce_slots=1, job_overhead_s=0.0
    ).calibrate(approx.chain.runtime.events)
    exact_jobs = int(exact_result.metadata["mr_jobs"])
    # The coreset ledger counts the two full scans separately.
    chain_jobs = max(1, int(approx_result.metadata["mr_jobs"]) - 2)
    modelled_exact = local.chain_cost(
        [local.scan_job(scaled_n)] * exact_jobs
    )
    modelled_coreset = local.coreset_chain_cost(
        scaled_n, coreset_size, chain_jobs=chain_jobs
    )
    return CoresetExecution(
        n=scaled_n,
        coreset_size=coreset_size,
        measured_exact_s=exact_s,
        measured_coreset_s=coreset_s,
        modelled_exact_s=modelled_exact.total_s,
        modelled_coreset_s=modelled_coreset.total_s,
        chain_jobs=chain_jobs,
    )


def render_coreset(outcome: CoresetExecution) -> str:
    return "\n".join(
        [
            "Coreset honest run — exact vs approximate pipeline at "
            f"n={outcome.n:,} (m={outcome.coreset_size:,})",
            f"measured:  exact {outcome.measured_exact_s:.2f}s, "
            f"coreset {outcome.measured_coreset_s:.2f}s "
            f"(speedup {outcome.measured_speedup:.1f}x)",
            f"modelled:  exact {outcome.modelled_exact_s:.2f}s, "
            f"coreset {outcome.modelled_coreset_s:.2f}s "
            f"(speedup {outcome.modelled_speedup:.1f}x, "
            f"{outcome.chain_jobs} summary-chain jobs)",
            f"coreset model delta: {outcome.coreset_model_delta:+.0%} "
            "(measured vs calibrated local cost model)",
        ]
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Section 7.5.2 billion-point projection; optionally "
        "execute a real exact-vs-coreset run at scaled n"
    )
    parser.add_argument("--scaled-n", type=int, default=None)
    parser.add_argument("--dims", type=int, default=None)
    parser.add_argument(
        "--execute",
        action="store_true",
        help="run the exact AND coreset pipelines for real instead of "
        "only projecting with the cost model",
    )
    parser.add_argument(
        "--coreset-size",
        type=int,
        default=2_000,
        help="summary size for the --execute coreset run",
    )
    parser.add_argument(
        "--coreset-mode", default="uniform", choices=("uniform", "lightweight")
    )
    args = parser.parse_args()
    if args.execute:
        print(
            render_coreset(
                run_coreset_execution(
                    scaled_n=args.scaled_n or 50_000,
                    dims=args.dims or 8,
                    coreset_size=args.coreset_size,
                    coreset_mode=args.coreset_mode,
                )
            )
        )
    else:
        print(
            main(
                scaled_n=args.scaled_n or 5_000, dims=args.dims or 50
            )
        )
