"""Section 7.5.2's billion-point run: MR-Light vs BoW-Light at 10^9 x 100d.

The paper: on a 10^9-point, 100-dimension data set (~0.2 TB), BoW
(Light) needed > 9 500 s while P3C+-MR-Light finished in ~4 300 s.
This environment cannot hold 10^9 points, so the harness

1. *measures* both algorithms on a scaled data set (same generator,
   100 dimensions), confirming both complete and recording their job
   structure, and
2. *projects* both at 10^9 points with the calibrated cluster cost
   model, reproducing the headline ordering and its rough factor (~2x).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines import BoW, BoWConfig
from repro.experiments.figure7 import project_runtime
from repro.experiments.runner import make_dataset
from repro.mapreduce.costmodel import ClusterCostModel
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight
from repro.obs import Observability, build_run_report

PAPER_N = 1_000_000_000
PAPER_DIMS = 100
PAPER_BOW_SECONDS = 9_500.0
PAPER_MR_LIGHT_SECONDS = 4_300.0


@dataclass
class BillionResult:
    measured_mr_light_s: float
    measured_bow_light_s: float
    measured_mr_jobs: int
    projected_mr_light_s: float
    projected_bow_light_s: float
    #: Standard run report of the measured MR-Light run (schema
    #: ``repro.obs/run-report/v1``), for the bench trajectory.
    run_report: dict | None = None

    @property
    def projected_ratio(self) -> float:
        return self.projected_bow_light_s / self.projected_mr_light_s

    @property
    def paper_ratio(self) -> float:
        return PAPER_BOW_SECONDS / PAPER_MR_LIGHT_SECONDS


def run(
    scaled_n: int = 5_000,
    dims: int = 50,
    num_clusters: int = 5,
    noise: float = 0.10,
    seed: int = 42,
) -> BillionResult:
    dataset = make_dataset(scaled_n, dims, num_clusters, noise, seed)

    obs = Observability()
    mr_light = P3CPlusMRLight(mr_config=P3CPlusMRConfig(num_splits=8), obs=obs)
    started = time.perf_counter()
    mr_result = mr_light.fit(dataset.data)
    mr_seconds = time.perf_counter() - started

    started = time.perf_counter()
    BoW(bow_config=BoWConfig(variant="light", samples_per_reducer=1_000)).fit(
        dataset.data
    )
    bow_seconds = time.perf_counter() - started

    model = ClusterCostModel()
    mr_jobs = int(mr_result.metadata["mr_jobs"])
    report = build_run_report(
        "mr-light",
        obs=obs,
        chain=mr_light.chain,
        dataset={"n": scaled_n, "d": dims},
        result={
            "num_clusters": len(mr_result.clusters),
            "num_outliers": int(len(mr_result.outliers)),
        },
        wall_time_s=mr_seconds,
        extra={"experiment": "billion"},
    )
    return BillionResult(
        measured_mr_light_s=mr_seconds,
        measured_bow_light_s=bow_seconds,
        measured_mr_jobs=mr_jobs,
        projected_mr_light_s=project_runtime("MR (Light)", PAPER_N, mr_jobs, model),
        projected_bow_light_s=project_runtime("BoW (Light)", PAPER_N, 1, model),
        run_report=report,
    )


def render(outcome: BillionResult, scaled_n: int) -> str:
    return "\n".join(
        [
            "Section 7.5.2 — one-billion-point run (10^9 x 100 dims)",
            f"measured at scaled n={scaled_n}: "
            f"MR (Light) {outcome.measured_mr_light_s:.1f}s "
            f"({outcome.measured_mr_jobs} MR jobs), "
            f"BoW (Light) {outcome.measured_bow_light_s:.1f}s",
            f"projected at n=10^9: MR (Light) "
            f"{outcome.projected_mr_light_s:,.0f}s, BoW (Light) "
            f"{outcome.projected_bow_light_s:,.0f}s "
            f"(ratio {outcome.projected_ratio:.2f}x)",
            f"paper:            MR (Light) {PAPER_MR_LIGHT_SECONDS:,.0f}s, "
            f"BoW (Light) {PAPER_BOW_SECONDS:,.0f}s "
            f"(ratio {outcome.paper_ratio:.2f}x)",
        ]
    )


def main(scaled_n: int = 5_000, dims: int = 50) -> str:
    return render(run(scaled_n=scaled_n, dims=dims), scaled_n)


if __name__ == "__main__":
    print(main())
