"""Figure 1: the Poisson test's power pathology.

The paper simulates the probability of observing (and the test
flagging) at least ``101 % * mu`` objects in a hyperrectangle whose
null expectation is ``mu``, when the true rate really is ``1.01 mu`` —
i.e. the test's *power* at a fixed 1 % relative effect.  For growing
``mu`` this probability approaches 100 %: on big data the Poisson test
certifies deviations that are statistically significant but practically
irrelevant, which is why P3C+ adds the effect-size test.
"""

from __future__ import annotations

from repro.core.stats import poisson_power_relative_effect
from repro.experiments.runner import format_table

#: Average bin sizes swept in the paper's simulation (x axis up to 1e5).
DEFAULT_MUS = (25, 100, 500, 1_000, 5_000, 10_000, 25_000, 50_000, 100_000)


def run(
    mus: tuple[int, ...] = DEFAULT_MUS,
    factor: float = 1.01,
    alpha: float = 0.05,
) -> list[tuple[int, float]]:
    """``(mu, power at a factor-relative effect)`` series."""
    return [
        (mu, poisson_power_relative_effect(mu, factor, alpha)) for mu in mus
    ]


def main(
    mus: tuple[int, ...] = DEFAULT_MUS,
    alpha: float = 0.05,
) -> str:
    series = run(mus, alpha=alpha)
    table = format_table(
        ["dataset size (mu)", "P(test flags 1.01 mu)"],
        [[mu, p] for mu, p in series],
    )
    lines = [
        "Figure 1 — probability the Poisson test flags a 1% relative "
        f"deviation (alpha={alpha})",
        table,
        "",
        "Paper shape: probability approaches ~100% for large mu — the "
        "significance test alone cannot tell relevant from irrelevant "
        "deviations on big data.",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
