"""Figure 4: naive vs MVB outlier detection quality (E4SC vs DB size).

Sweeps DB size x noise level x cluster count, running the full P3C+
pipeline twice — once with the naive moment estimator, once with the
MVB estimator — and reports E4SC per cell.  Paper shape: MVB beats
naive almost everywhere; quality drops for the largest size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.p3c_plus import P3CPlus, P3CPlusConfig
from repro.experiments.configs import QUICK_SCALE, ExperimentScale
from repro.experiments.runner import format_table, make_dataset, run_cell


@dataclass
class Figure4Row:
    detector: str
    n: int
    num_clusters: int
    noise: float
    e4sc: float


def run(
    scale: ExperimentScale = QUICK_SCALE,
    noise_levels: tuple[float, ...] = (0.05, 0.10, 0.20),
    num_clusters: tuple[int, ...] = (3, 5, 7),
) -> list[Figure4Row]:
    rows: list[Figure4Row] = []
    for noise in noise_levels:
        for k in num_clusters:
            for n in scale.sizes:
                dataset = make_dataset(n, scale.dims, k, noise, scale.seed)
                for detector in ("naive", "mvb"):
                    config = P3CPlusConfig(outlier_method=detector)
                    cell = run_cell(
                        detector, lambda: P3CPlus(config), dataset
                    )
                    rows.append(
                        Figure4Row(
                            detector=detector.upper(),
                            n=n,
                            num_clusters=k,
                            noise=noise,
                            e4sc=cell.e4sc,
                        )
                    )
    return rows


def render(rows: list[Figure4Row]) -> str:
    paired = _paired(rows)
    table = format_table(
        ["noise", "clusters", "DB size", "NAIVE E4SC", "MVB E4SC"],
        paired,
    )
    wins = sum(1 for pair in paired if pair[4] >= pair[3])
    return "\n".join(
        [
            "Figure 4 — naive vs MVB outlier detection (E4SC)",
            table,
            "",
            f"MVB >= NAIVE in {wins}/{len(paired)} cells "
            "(paper: all but one cell).",
        ]
    )


def main(scale: ExperimentScale = QUICK_SCALE) -> str:
    return render(run(scale))


def _paired(rows: list[Figure4Row]) -> list[list[object]]:
    by_key: dict[tuple, dict[str, float]] = {}
    for row in rows:
        key = (row.noise, row.num_clusters, row.n)
        by_key.setdefault(key, {})[row.detector] = row.e4sc
    return [
        [noise, k, n, scores.get("NAIVE", 0.0), scores.get("MVB", 0.0)]
        for (noise, k, n), scores in sorted(by_key.items())
    ]


if __name__ == "__main__":
    print(main())
