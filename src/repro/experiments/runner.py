"""Shared sweep executor and table formatting for the harnesses.

Quality sweeps run the *serial reference* implementations of
P3C+/P3C+-Light: the test suite proves them equivalent to the
MapReduce drivers (identical cluster cores; identical Light output),
and they are an order of magnitude faster under a single-core Python
runtime.  Runtime experiments (Figure 7, billion-point projection) run
the real MR drivers so job counts and shuffle volumes are measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.baselines import BoW, BoWConfig
from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.core.types import ClusteringResult
from repro.data import GeneratorConfig, SyntheticDataset, generate_synthetic
from repro.eval import e4sc_score


def make_dataset(
    n: int,
    d: int,
    num_clusters: int,
    noise: float,
    seed: int,
) -> SyntheticDataset:
    return generate_synthetic(
        GeneratorConfig(
            n=n,
            d=d,
            num_clusters=num_clusters,
            noise_fraction=noise,
            max_cluster_dims=min(10, d),
            seed=seed,
        )
    )


def algorithm_registry(
    config: P3CPlusConfig | None = None,
    samples_per_reducer: int = 1_000,
) -> dict[str, Callable[[], Any]]:
    """The algorithm line-up of Figures 6 and 7, by the paper's labels."""
    config = config or P3CPlusConfig()
    return {
        "BoW (Light)": lambda: BoW(
            config,
            BoWConfig(variant="light", samples_per_reducer=samples_per_reducer),
        ),
        "BoW (MVB)": lambda: BoW(
            config,
            BoWConfig(variant="mvb", samples_per_reducer=samples_per_reducer),
        ),
        "MR (Light)": lambda: P3CPlusLight(config),
        "MR (MVB)": lambda: P3CPlus(config.with_overrides(outlier_method="mvb")),
        "MR (Naive)": lambda: P3CPlus(config.with_overrides(outlier_method="naive")),
    }


@dataclass
class SweepRow:
    """One measured cell of a sweep table."""

    algorithm: str
    n: int
    num_clusters: int
    noise: float
    e4sc: float
    seconds: float
    num_found: int


def run_cell(
    algorithm_name: str,
    factory: Callable[[], Any],
    dataset: SyntheticDataset,
) -> SweepRow:
    truth = dataset.ground_truth_clusters()
    started = time.perf_counter()
    result: ClusteringResult = factory().fit(dataset.data)
    elapsed = time.perf_counter() - started
    return SweepRow(
        algorithm=algorithm_name,
        n=len(dataset.data),
        num_clusters=dataset.config.num_clusters,
        noise=dataset.config.noise_fraction,
        e4sc=e4sc_score(result.clusters, truth),
        seconds=elapsed,
        num_found=result.num_clusters,
    )


def format_table(headers: list[str], rows: list[list[Any]]) -> str:
    """Fixed-width text table (the harnesses' printable output)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
