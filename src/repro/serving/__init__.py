"""Online serving: persisted fitted models and the batched scorer."""

from repro.serving.model import (
    SCHEMA_VERSION,
    AssignResult,
    FittedModel,
    reference_assign,
)
from repro.serving.registry import (
    ModelCorruptError,
    ModelNotFoundError,
    ModelRegistry,
    RegistryError,
)

__all__ = [
    "SCHEMA_VERSION",
    "AssignResult",
    "FittedModel",
    "ModelCorruptError",
    "ModelNotFoundError",
    "ModelRegistry",
    "RegistryError",
    "reference_assign",
]
