"""Fitted-model bundle and batched point scorer for the serving path.

A :class:`FittedModel` is what a P3C+ run leaves behind once the chain
finishes: the cluster cores with their relevant intervals, the EM
mixture over ``A_rel`` (absent for the light variant), the MVB moment
estimates that parameterise the serve-time outlier verdict, and the
binning resolution the run used.  The bundle is independent of how it
was fitted — the registry persists it, the scorer serves it.

Scoring semantics
-----------------

``FittedModel.assign(points)`` returns ``(cluster_ids, outlier_mask,
scores)`` aligned with the input rows:

- **Full model** (mixture present): hard argmax-posterior component
  assignment, then the qdaim-style outlier verdict — squared
  Mahalanobis distance to the assigned component's MVB moments compared
  against the χ² critical value at ``outlier_alpha`` (with the same
  small-sample inflation the OD job applies).  ``scores`` is the
  squared Mahalanobis distance; outliers keep their distance but get
  ``cluster_id == -1``.
- **Light model** (no mixture): cores *are* clusters.  A point is
  assigned to the first covering core in interestingness order exactly
  as ``light_membership`` does, via the RSSC bit-plane membership
  kernel; ``scores`` is the covering-core count, and points covered by
  no core are outliers.  Finite values outside [0, 1] clamp to the
  boundary cells, matching the batch RSSC contract.
- Rows with a non-finite value on any *relevant* attribute are never
  assigned: ``cluster_id == -1``, ``outlier_mask`` True, ``score`` NaN.
  Non-finite values on irrelevant attributes are ignored, as the
  projected-clustering semantics demand.

The batch path is vectorised; :func:`reference_assign` is the scalar
oracle it is property-tested against, element-wise bitwise.  The
component log-joint is computed from a fixed-reduction-order quadratic
form plus a precomputed Cholesky log-determinant — mathematically
identical to ``GaussianMixture.assign`` but row-stable, so batch and
scalar scoring agree bit-for-bit.  Neither LAPACK's blocked triangular
solve nor ``np.einsum`` (whose SIMD tail handling rounds a row
differently depending on its position in the batch) gives that
guarantee, hence :func:`_stable_mahalanobis` below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.core.em import _LOG_2PI, GaussianMixture, _safe_cholesky
from repro.core.outliers import small_sample_inflation
from repro.core.stats import _robust_inverse, chi2_critical_value
from repro.core.types import ClusterCore
from repro.mapreduce.cache import DistributedCache
from repro.mr.rssc import RSSC

#: Schema identifier persisted with every registry entry; bumped on any
#: layout change so stale bundles fail loudly instead of mis-scoring.
SCHEMA_VERSION = "repro.serving/fitted-model/v1"


def _stable_mahalanobis(
    points: np.ndarray, mean: np.ndarray, inv: np.ndarray
) -> np.ndarray:
    """Squared Mahalanobis distance with a batch-size-independent
    per-row rounding.

    ``core.stats.mahalanobis_squared`` contracts via ``np.einsum``,
    which rounds a row's quadratic form differently depending on where
    it lands relative to the SIMD tail — the same point can score a
    last-ulp different value in a 1-row batch than in a 58-row batch.
    Serving promises batch == scalar bitwise, so the quadratic form is
    accumulated here in explicit ``(a, b)`` order with elementwise ops
    only; each row then goes through an identical operation sequence
    regardless of how many neighbours it has.  ``A_rel`` is small
    (typically 1-4 attributes), so the m² Python loop is cheap.
    """
    diff = points - mean
    quad = np.zeros(len(diff))
    m = diff.shape[1]
    for a in range(m):
        for b in range(m):
            quad += diff[:, a] * inv[a, b] * diff[:, b]
    return quad


class AssignResult(NamedTuple):
    """Row-aligned scoring output of :meth:`FittedModel.assign`."""

    cluster_ids: np.ndarray  # (n,) int64, -1 = outlier / unassigned
    outlier_mask: np.ndarray  # (n,) bool
    scores: np.ndarray  # (n,) float64, NaN for non-finite input rows


@dataclass
class FittedModel:
    """Serving bundle: cores, mixture, MVB estimates, binning."""

    algorithm: str
    cores: tuple[ClusterCore, ...]
    mixture: GaussianMixture | None
    od_means: np.ndarray | None  # (k, m) MVB means in A_rel coordinates
    od_covariances: np.ndarray | None  # (k, m, m) MVB covariances
    od_counts: np.ndarray | None  # (k,) moment sample counts
    outlier_alpha: float
    num_bins: int
    n_points: int
    n_dims: int
    _caches: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.cores = tuple(self.cores)
        if self.mixture is not None:
            if self.od_means is None or self.od_covariances is None:
                raise ValueError("full models require MVB outlier moments")
            self.od_means = np.asarray(self.od_means, dtype=float)
            self.od_covariances = np.asarray(self.od_covariances, dtype=float)
            if self.od_counts is None:
                self.od_counts = np.zeros(len(self.od_means))
            self.od_counts = np.asarray(self.od_counts, dtype=float)

    # -- derived structure ------------------------------------------------

    @property
    def num_clusters(self) -> int:
        if self.mixture is not None:
            return self.mixture.num_components
        return len(self.cores)

    @property
    def relevant_attributes(self) -> tuple[int, ...]:
        """Attributes whose values the scorer actually inspects."""
        if self.mixture is not None:
            return tuple(self.mixture.attributes)
        attrs: set[int] = set()
        for core in self.cores:
            attrs.update(core.attributes)
        return tuple(sorted(attrs))

    def binning_edges(self) -> np.ndarray:
        """Equi-width bin edges of the fitting run's histogram grid."""
        return np.linspace(0.0, 1.0, self.num_bins + 1)

    def _rssc(self) -> RSSC:
        rssc = self._caches.get("rssc")
        if rssc is None:
            rssc = RSSC([core.signature for core in self.cores])
            self._caches["rssc"] = rssc
        return rssc

    def _full_scorer(self) -> dict:
        """Precomputed per-component constants for the full-model path."""
        scorer = self._caches.get("full")
        if scorer is None:
            mixture = self.mixture
            assert mixture is not None
            k = mixture.num_components
            m = len(mixture.attributes)
            log_weights = np.log(np.maximum(mixture.weights, 1e-300))
            log_dets = np.empty(k)
            em_inverses = np.empty((k, m, m))
            od_inverses = np.empty((k, m, m))
            for j in range(k):
                _, log_dets[j] = _safe_cholesky(mixture.covariances[j])
                em_inverses[j] = _robust_inverse(
                    np.atleast_2d(mixture.covariances[j])
                )
                od_inverses[j] = _robust_inverse(
                    np.atleast_2d(self.od_covariances[j])
                )
            # Serve-time critical values replicate run_od_job exactly:
            # χ² at outlier_alpha with |A_rel| degrees of freedom, inflated
            # for small per-component sample counts.
            base = chi2_critical_value(m, self.outlier_alpha)
            critical = np.empty(k)
            for j in range(k):
                inflation = small_sample_inflation(int(self.od_counts[j]), m)
                critical[j] = (
                    base * inflation if np.isfinite(inflation) else np.inf
                )
            scorer = {
                "log_weights": log_weights,
                "log_dets": log_dets,
                "em_inverses": em_inverses,
                "od_inverses": od_inverses,
                "critical": critical,
                "const": m * _LOG_2PI,
            }
            self._caches["full"] = scorer
        return scorer

    # -- scoring ----------------------------------------------------------

    def _as_batch(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            rows = -1 if points.size else 0
            points = points.reshape(rows, self.n_dims)
        if points.ndim != 2 or points.shape[1] != self.n_dims:
            raise ValueError(
                f"point batch shape {np.shape(points)} incompatible with "
                f"{self.n_dims}-dimensional model"
            )
        return points

    def assign(self, points: np.ndarray) -> AssignResult:
        """Batched vectorised scoring of a ``(n, d)`` point block."""
        points = self._as_batch(points)
        n = len(points)
        ids = np.full(n, -1, dtype=np.int64)
        outliers = np.ones(n, dtype=bool)
        scores = np.full(n, np.nan)
        rel = list(self.relevant_attributes)
        if rel:
            finite = np.isfinite(points[:, rel]).all(axis=1)
        else:
            finite = np.zeros(n, dtype=bool)
        if finite.any():
            rows = np.where(finite)[0]
            clean = points[rows]
            if self.mixture is not None:
                cid, out, sc = self._assign_full(clean)
            else:
                cid, out, sc = self._assign_light(clean)
            ids[rows] = cid
            outliers[rows] = out
            scores[rows] = sc
        return AssignResult(ids, outliers, scores)

    def _assign_full(
        self, clean: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        mixture = self.mixture
        assert mixture is not None
        scorer = self._full_scorer()
        sub = mixture.project(clean)
        k = mixture.num_components
        joint = np.empty((len(sub), k))
        for j in range(k):
            d2 = _stable_mahalanobis(
                sub, mixture.means[j], scorer["em_inverses"][j]
            )
            joint[:, j] = scorer["log_weights"][j] - 0.5 * (
                scorer["const"] + scorer["log_dets"][j] + d2
            )
        assignment = np.argmax(joint, axis=1)
        d2_out = np.empty(len(sub))
        for j in range(k):
            members = assignment == j
            if members.any():
                d2_out[members] = _stable_mahalanobis(
                    sub[members], self.od_means[j], scorer["od_inverses"][j]
                )
        outliers = d2_out > scorer["critical"][assignment]
        ids = assignment.astype(np.int64)
        ids[outliers] = -1
        return ids, outliers, d2_out

    def _assign_light(
        self, clean: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        membership = self._rssc().membership_matrix(clean)
        cover = membership.sum(axis=1)
        # First covering core in core order == light_membership's argmax
        # over interestingness-ordered core masks.
        first = np.argmax(membership, axis=1) if membership.shape[1] else np.zeros(
            len(clean), dtype=np.int64
        )
        ids = np.where(cover > 0, first, -1).astype(np.int64)
        outliers = ids < 0
        return ids, outliers, cover.astype(float)

    # -- identity ---------------------------------------------------------

    def _fingerprint_payload(self) -> dict:
        payload: dict = {
            "schema": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "outlier_alpha": float(self.outlier_alpha),
            "num_bins": int(self.num_bins),
            "n_points": int(self.n_points),
            "n_dims": int(self.n_dims),
            "cores": tuple(
                (
                    tuple(
                        (iv.attribute, iv.lower, iv.upper)
                        for iv in core.signature
                    ),
                    int(core.support),
                    float(core.expected_support),
                )
                for core in self.cores
            ),
        }
        if self.mixture is not None:
            payload.update(
                em_attributes=tuple(self.mixture.attributes),
                em_means=self.mixture.means,
                em_covariances=self.mixture.covariances,
                em_weights=self.mixture.weights,
                od_means=self.od_means,
                od_covariances=self.od_covariances,
                od_counts=self.od_counts,
            )
        return payload

    def fingerprint(self) -> str:
        """Content fingerprint over the canonical parameter payload.

        Stable across save/load round trips (the registry verifies it on
        load) and independent of anything incidental like timestamps.
        """
        return DistributedCache(self._fingerprint_payload()).fingerprint()


def reference_assign(model: FittedModel, points: np.ndarray) -> AssignResult:
    """Scalar one-point-at-a-time reference scorer.

    The oracle for the batched path (property-tested element-wise
    bitwise-identical) and the denominator of the serving benchmark's
    speedup gate.  Deliberately naive: a Python loop over rows, the
    arbitrary-precision ``membership_bits`` path for core membership,
    per-row Mahalanobis evaluations for the mixture.
    """
    points = model._as_batch(points)
    rel = list(model.relevant_attributes)
    ids: list[int] = []
    outliers: list[bool] = []
    scores: list[float] = []
    rssc = model._rssc() if model.mixture is None else None
    scorer = model._full_scorer() if model.mixture is not None else None
    for row in points:
        if not rel or not np.all(np.isfinite(row[rel])):
            ids.append(-1)
            outliers.append(True)
            scores.append(float("nan"))
            continue
        if model.mixture is not None:
            mixture = model.mixture
            sub = row[list(mixture.attributes)][None, :]
            k = mixture.num_components
            joint = np.empty(k)
            for j in range(k):
                d2 = _stable_mahalanobis(
                    sub, mixture.means[j], scorer["em_inverses"][j]
                )[0]
                joint[j] = scorer["log_weights"][j] - 0.5 * (
                    scorer["const"] + scorer["log_dets"][j] + d2
                )
            best = int(np.argmax(joint))
            d2_out = float(
                _stable_mahalanobis(
                    sub, model.od_means[best], scorer["od_inverses"][best]
                )[0]
            )
            is_outlier = d2_out > scorer["critical"][best]
            ids.append(-1 if is_outlier else best)
            outliers.append(bool(is_outlier))
            scores.append(d2_out)
        else:
            clamped = np.clip(row, 0.0, 1.0)
            bits = rssc.membership_bits(clamped)
            cover = bits.bit_count()
            if cover:
                first = (bits & -bits).bit_length() - 1
                ids.append(first)
                outliers.append(False)
            else:
                ids.append(-1)
                outliers.append(True)
            scores.append(float(cover))
    return AssignResult(
        np.array(ids, dtype=np.int64),
        np.array(outliers, dtype=bool),
        np.array(scores, dtype=float),
    )
