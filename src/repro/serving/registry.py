"""Versioned filesystem model registry (JSON metadata + npz arrays).

Layout under the registry root::

    <root>/models/<model_id>/model.json    # schema, cores, scalars
    <root>/models/<model_id>/arrays.npz    # EM + MVB parameter arrays
    <root>/tags/<tag>.json                 # {"model_id": ...}

``model_id`` is ``<algorithm>-<content-fingerprint>``, so saving the
same fitted parameters twice is idempotent and two concurrent service
runs racing to save cannot clobber each other: each writes into a
private temp directory and publishes it with one atomic ``os.replace``;
the loser of the race finds the winner's identical bundle already in
place and discards its own copy.

Loads are defensive: missing entries raise :class:`ModelNotFoundError`,
truncated or tampered files raise :class:`ModelCorruptError` (arrays
load with ``allow_pickle=False`` — nothing in a bundle is ever
unpickled), and the content fingerprint is recomputed from the loaded
parameters and compared against the stored one before the model is
returned.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
import zipfile
from pathlib import Path

import numpy as np

from repro.core.em import GaussianMixture
from repro.core.types import ClusterCore, Interval, Signature
from repro.serving.model import SCHEMA_VERSION, FittedModel

#: npz keys persisted for a full model; light models carry no arrays.
_ARRAY_KEYS = (
    "em_means",
    "em_covariances",
    "em_weights",
    "od_means",
    "od_covariances",
    "od_counts",
)


class RegistryError(Exception):
    """Base class for registry failures."""


class ModelNotFoundError(RegistryError, KeyError):
    """No model or tag with the requested name exists."""


class ModelCorruptError(RegistryError):
    """A persisted bundle is truncated, tampered, or schema-incompatible."""


def _core_to_json(core: ClusterCore) -> dict:
    return {
        "signature": [
            {"attribute": iv.attribute, "lower": iv.lower, "upper": iv.upper}
            for iv in core.signature
        ],
        "support": int(core.support),
        "expected_support": float(core.expected_support),
    }


def _core_from_json(payload: dict) -> ClusterCore:
    signature = Signature(
        intervals=tuple(
            Interval(
                attribute=int(iv["attribute"]),
                lower=float(iv["lower"]),
                upper=float(iv["upper"]),
            )
            for iv in payload["signature"]
        )
    )
    return ClusterCore(
        signature=signature,
        support=int(payload["support"]),
        expected_support=float(payload["expected_support"]),
    )


class ModelRegistry:
    """Filesystem-backed store of :class:`FittedModel` bundles."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.models_dir = self.root / "models"
        self.tags_dir = self.root / "tags"

    # -- writing ----------------------------------------------------------

    def save(self, model: FittedModel, tags: tuple[str, ...] = ()) -> str:
        """Persist ``model``; returns its content-addressed model id.

        Idempotent: re-saving identical parameters is a no-op beyond
        (re)pointing the requested tags.
        """
        model_id = f"{model.algorithm}-{model.fingerprint()}"
        final = self.models_dir / model_id
        if not final.exists():
            self.models_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.models_dir / f".tmp-{model_id}-{uuid.uuid4().hex[:8]}"
            tmp.mkdir()
            try:
                self._write_bundle(tmp, model, model_id)
                try:
                    os.replace(tmp, final)
                except OSError:
                    # Lost a concurrent-save race: the winner published an
                    # identical (content-addressed) bundle already.
                    if not final.exists():
                        raise
                    shutil.rmtree(tmp, ignore_errors=True)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
        for name in tags:
            self.tag(model_id, name)
        return model_id

    def _write_bundle(self, directory: Path, model: FittedModel, model_id: str) -> None:
        meta: dict = {
            "schema": SCHEMA_VERSION,
            "model_id": model_id,
            "algorithm": model.algorithm,
            "fingerprint": model.fingerprint(),
            "outlier_alpha": float(model.outlier_alpha),
            "num_bins": int(model.num_bins),
            "n_points": int(model.n_points),
            "n_dims": int(model.n_dims),
            "created_unix": time.time(),  # informational; not fingerprinted
            "cores": [_core_to_json(core) for core in model.cores],
            "em_attributes": (
                list(model.mixture.attributes) if model.mixture is not None else None
            ),
        }
        (directory / "model.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )
        arrays: dict[str, np.ndarray] = {}
        if model.mixture is not None:
            arrays = {
                "em_means": model.mixture.means,
                "em_covariances": model.mixture.covariances,
                "em_weights": model.mixture.weights,
                "od_means": model.od_means,
                "od_covariances": model.od_covariances,
                "od_counts": model.od_counts,
            }
        np.savez(directory / "arrays.npz", **arrays)

    def tag(self, model_id: str, name: str) -> None:
        """Point tag ``name`` at ``model_id`` (atomic overwrite)."""
        if not (self.models_dir / model_id).exists():
            raise ModelNotFoundError(model_id)
        self.tags_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.tags_dir / f".tmp-{name}-{uuid.uuid4().hex[:8]}"
        tmp.write_text(json.dumps({"model_id": model_id}) + "\n")
        os.replace(tmp, self.tags_dir / f"{name}.json")

    # -- reading ----------------------------------------------------------

    def resolve(self, name: str) -> str:
        """Resolve a model id or tag name to a model id."""
        if (self.models_dir / name).is_dir():
            return name
        tag_path = self.tags_dir / f"{name}.json"
        if tag_path.exists():
            try:
                payload = json.loads(tag_path.read_text())
                return str(payload["model_id"])
            except (ValueError, KeyError) as exc:
                raise ModelCorruptError(f"tag file {tag_path} is corrupt") from exc
        raise ModelNotFoundError(name)

    def load(self, name: str) -> FittedModel:
        """Load a model by id or tag, verifying schema and fingerprint."""
        model_id = self.resolve(name)
        directory = self.models_dir / model_id
        if not directory.is_dir():
            raise ModelNotFoundError(model_id)
        try:
            meta = json.loads((directory / "model.json").read_text())
        except FileNotFoundError as exc:
            raise ModelCorruptError(f"{model_id}: model.json missing") from exc
        except ValueError as exc:
            raise ModelCorruptError(f"{model_id}: model.json unreadable") from exc
        if meta.get("schema") != SCHEMA_VERSION:
            raise ModelCorruptError(
                f"{model_id}: schema {meta.get('schema')!r} != {SCHEMA_VERSION!r}"
            )
        try:
            with np.load(directory / "arrays.npz", allow_pickle=False) as bundle:
                arrays = {key: bundle[key] for key in bundle.files}
        except FileNotFoundError as exc:
            raise ModelCorruptError(f"{model_id}: arrays.npz missing") from exc
        except (ValueError, OSError, KeyError, zipfile.BadZipFile) as exc:
            raise ModelCorruptError(f"{model_id}: arrays.npz unreadable") from exc
        model = self._build_model(meta, arrays, model_id)
        if model.fingerprint() != meta.get("fingerprint"):
            raise ModelCorruptError(
                f"{model_id}: stored fingerprint does not match contents"
            )
        return model

    def _build_model(
        self, meta: dict, arrays: dict[str, np.ndarray], model_id: str
    ) -> FittedModel:
        try:
            cores = tuple(_core_from_json(c) for c in meta["cores"])
            mixture = None
            od_means = od_covs = od_counts = None
            if meta.get("em_attributes") is not None:
                missing = [key for key in _ARRAY_KEYS if key not in arrays]
                if missing:
                    raise ModelCorruptError(
                        f"{model_id}: arrays.npz missing {missing}"
                    )
                mixture = GaussianMixture(
                    means=arrays["em_means"],
                    covariances=arrays["em_covariances"],
                    weights=arrays["em_weights"],
                    attributes=tuple(int(a) for a in meta["em_attributes"]),
                )
                od_means = arrays["od_means"]
                od_covs = arrays["od_covariances"]
                od_counts = arrays["od_counts"]
            return FittedModel(
                algorithm=str(meta["algorithm"]),
                cores=cores,
                mixture=mixture,
                od_means=od_means,
                od_covariances=od_covs,
                od_counts=od_counts,
                outlier_alpha=float(meta["outlier_alpha"]),
                num_bins=int(meta["num_bins"]),
                n_points=int(meta["n_points"]),
                n_dims=int(meta["n_dims"]),
            )
        except ModelCorruptError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelCorruptError(f"{model_id}: malformed bundle") from exc

    # -- listing ----------------------------------------------------------

    def list_models(self) -> list[dict]:
        """Summaries of every stored model, sorted by id."""
        if not self.models_dir.is_dir():
            return []
        out: list[dict] = []
        for directory in sorted(self.models_dir.iterdir()):
            if not directory.is_dir() or directory.name.startswith(".tmp-"):
                continue
            try:
                meta = json.loads((directory / "model.json").read_text())
            except (OSError, ValueError):
                continue
            out.append(
                {
                    "model_id": directory.name,
                    "algorithm": meta.get("algorithm"),
                    "created_unix": meta.get("created_unix"),
                    "n_points": meta.get("n_points"),
                    "n_dims": meta.get("n_dims"),
                    "num_cores": len(meta.get("cores", [])),
                }
            )
        return out

    def tags(self) -> dict[str, str]:
        """Mapping of tag name -> model id."""
        if not self.tags_dir.is_dir():
            return {}
        out: dict[str, str] = {}
        for path in sorted(self.tags_dir.glob("*.json")):
            try:
                out[path.stem] = str(json.loads(path.read_text())["model_id"])
            except (OSError, ValueError, KeyError):
                continue
        return out
