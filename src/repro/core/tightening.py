"""Interval tightening (Sections 3.2.2 / 5.7).

The output signature of a cluster is the tightest hyperrectangle around
its members in the relevant attributes: per attribute, the interval
``[min, max]`` over the member values.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Interval, Signature


def tighten_intervals(
    data: np.ndarray,
    member_mask: np.ndarray,
    attributes: frozenset[int],
) -> Signature:
    """The tightened output signature of one cluster.

    Raises :class:`ValueError` for an empty cluster or an empty
    attribute set — both indicate a driver bug upstream.
    """
    if not attributes:
        raise ValueError("cannot tighten a cluster with no relevant attributes")
    members = data[member_mask]
    if len(members) == 0:
        raise ValueError("cannot tighten an empty cluster")
    intervals = [
        Interval(
            attribute,
            float(members[:, attribute].min()),
            float(members[:, attribute].max()),
        )
        for attribute in sorted(attributes)
    ]
    return Signature(intervals)
