"""Gaussian-mixture EM in the relevant subspace (Sections 3.2.2 / 5.4).

The cluster cores seed one Gaussian each; EM runs only over
``A_rel`` — the union of the cores' relevant attributes (Eq. 3).
Initialisation follows the two-pass scheme of Section 5.4: component
moments are first estimated from the core support sets alone, points
outside every support set are then assigned to their Mahalanobis-nearest
core, and the moments are re-estimated including those points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stats import mahalanobis_squared
from repro.core.types import ClusterCore

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class GaussianMixture:
    """A Gaussian mixture over the projected subspace ``A_rel``.

    ``attributes`` maps subspace columns back to original attribute
    indices; ``means``/``covariances`` live in subspace coordinates.
    """

    means: np.ndarray  # (k, m)
    covariances: np.ndarray  # (k, m, m)
    weights: np.ndarray  # (k,)
    attributes: tuple[int, ...]
    log_likelihood_history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        m = len(self.attributes)
        means = np.asarray(self.means, dtype=float)
        if means.ndim == 1:
            # A single-attribute subspace yields (k,) moment vectors and a
            # single-component model yields (m,); ``attributes`` fixes the
            # subspace dimensionality, so orient by it instead of guessing
            # with atleast_2d (which would turn (k,) into (1, k)).
            means = means.reshape(-1, 1) if m == 1 else means.reshape(1, -1)
        self.means = means
        covariances = np.asarray(self.covariances, dtype=float)
        if m == 1 and covariances.ndim < 3:
            covariances = covariances.reshape(-1, 1, 1)
        elif covariances.ndim == 2 and covariances.shape == (m, m):
            covariances = covariances.reshape(1, m, m)
        self.covariances = covariances
        self.weights = np.atleast_1d(np.asarray(self.weights, dtype=float))
        k, m = self.means.shape
        if self.covariances.shape != (k, m, m):
            raise ValueError(
                f"covariances shape {self.covariances.shape} != {(k, m, m)}"
            )
        if self.weights.shape != (k,):
            raise ValueError(f"weights shape {self.weights.shape} != {(k,)}")
        if len(self.attributes) != m:
            raise ValueError("attributes must match subspace dimensionality")

    @property
    def num_components(self) -> int:
        return len(self.weights)

    def project(self, data: np.ndarray) -> np.ndarray:
        """Project full-space rows onto the mixture's subspace."""
        return data[:, list(self.attributes)]

    def log_responsibilities(self, sub: np.ndarray) -> np.ndarray:
        """``log p(component | x)`` for each point (rows) and component
        (columns), computed in subspace coordinates."""
        joint = self._log_joint(sub)
        norm = _logsumexp_rows(joint)
        return joint - norm[:, None]

    def assign(self, sub: np.ndarray) -> np.ndarray:
        """Hard argmax-posterior assignment (the paper's conversion of
        Gaussians into projected clusters)."""
        return np.argmax(self._log_joint(sub), axis=1)

    def log_likelihood(self, sub: np.ndarray) -> float:
        return float(_logsumexp_rows(self._log_joint(sub)).sum())

    def _as_batch(self, sub: np.ndarray) -> np.ndarray:
        """Normalise a point batch to ``(n, m)`` subspace coordinates.

        Accepts an already 2-D batch, a 1-D vector of values when
        ``m == 1``, a single 1-D point when ``m > 1``, and empty input
        of either rank.
        """
        sub = np.asarray(sub, dtype=float)
        m = len(self.attributes)
        if sub.ndim == 1:
            if sub.size == 0 or m == 1:
                sub = sub.reshape(-1, 1) if m == 1 else sub.reshape(0, m)
            else:
                sub = sub.reshape(1, -1)
        if sub.ndim != 2 or sub.shape[1] != m:
            raise ValueError(
                f"point batch shape {sub.shape} incompatible with "
                f"{m}-dimensional subspace"
            )
        return sub

    def _log_joint(self, sub: np.ndarray) -> np.ndarray:
        sub = self._as_batch(sub)
        n = len(sub)
        k = self.num_components
        out = np.empty((n, k), dtype=float)
        for j in range(k):
            out[:, j] = np.log(max(self.weights[j], 1e-300)) + _gaussian_logpdf(
                sub, self.means[j], self.covariances[j]
            )
        return out


def _logsumexp_rows(matrix: np.ndarray) -> np.ndarray:
    peak = matrix.max(axis=1, keepdims=True)
    return (peak + np.log(np.exp(matrix - peak).sum(axis=1, keepdims=True)))[:, 0]


def _gaussian_logpdf(
    points: np.ndarray, mean: np.ndarray, cov: np.ndarray
) -> np.ndarray:
    m = len(mean)
    chol, log_det = _safe_cholesky(cov)
    diff = points - mean
    solved = np.linalg.solve(chol, diff.T)
    quad = (solved**2).sum(axis=0)
    return -0.5 * (m * _LOG_2PI + log_det + quad)


def _safe_cholesky(cov: np.ndarray, ridge: float = 1e-9) -> tuple[np.ndarray, float]:
    m = cov.shape[0]
    attempt = cov
    for _ in range(40):
        try:
            chol = np.linalg.cholesky(attempt)
            log_det = 2.0 * float(np.log(np.diag(chol)).sum())
            return chol, log_det
        except np.linalg.LinAlgError:
            attempt = attempt + ridge * np.eye(m)
            ridge *= 10
    raise np.linalg.LinAlgError("covariance could not be regularised")


def relevant_attributes(cores: list[ClusterCore]) -> tuple[int, ...]:
    """``A_rel`` (Eq. 3): attributes relevant to at least one core."""
    attrs: set[int] = set()
    for core in cores:
        attrs.update(core.attributes)
    return tuple(sorted(attrs))


def _moments(
    sub: np.ndarray,
    weights: np.ndarray,
    reg: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted sample mean and covariance with ridge regularisation,
    following the weighted-covariance formula of Section 5.4."""
    m = sub.shape[1]
    total = weights.sum()
    if total <= 0:
        return np.full(m, 0.5), np.eye(m) / 12.0
    mean = (weights[:, None] * sub).sum(axis=0) / total
    diff = sub - mean
    sq = (weights**2).sum()
    denominator = total**2 - sq
    scale = total / denominator if denominator > 0 else 1.0 / total
    cov = scale * (weights[:, None] * diff).T @ diff
    return mean, cov + reg * np.eye(m)


def initialize_from_cores(
    data: np.ndarray,
    cores: list[ClusterCore],
    reg: float = 1e-6,
) -> GaussianMixture:
    """Two-pass mixture initialisation from cluster cores (Section 5.4)."""
    if not cores:
        raise ValueError("cannot initialise EM without cluster cores")
    attrs = relevant_attributes(cores)
    sub = data[:, list(attrs)]
    n = len(data)
    k = len(cores)

    masks = [core.signature.support_mask(data) for core in cores]

    # Pass 1: moments from support sets only.
    means = np.empty((k, len(attrs)))
    covs = np.empty((k, len(attrs), len(attrs)))
    for j, mask in enumerate(masks):
        weights = mask.astype(float)
        means[j], covs[j] = _moments(sub, weights, reg)

    # Assign points outside every support set to nearest core.
    in_any = np.zeros(n, dtype=bool)
    for mask in masks:
        in_any |= mask
    stray = ~in_any
    member_masks = [mask.copy() for mask in masks]
    if stray.any():
        distances = np.stack(
            [mahalanobis_squared(sub[stray], means[j], covs[j]) for j in range(k)],
            axis=1,
        )
        nearest = np.argmin(distances, axis=1)
        stray_idx = np.where(stray)[0]
        for j in range(k):
            member_masks[j][stray_idx[nearest == j]] = True

    # Pass 2: moments including the assigned strays.
    sizes = np.empty(k)
    for j, mask in enumerate(member_masks):
        weights = mask.astype(float)
        means[j], covs[j] = _moments(sub, weights, reg)
        sizes[j] = weights.sum()

    weights = sizes / max(sizes.sum(), 1.0)
    weights = np.clip(weights, 1e-12, None)
    weights /= weights.sum()
    return GaussianMixture(
        means=means, covariances=covs, weights=weights, attributes=attrs
    )


def fit_em(
    data: np.ndarray,
    init: GaussianMixture,
    max_iter: int = 15,
    tol: float = 1e-5,
    reg: float = 1e-6,
) -> GaussianMixture:
    """Standard full-covariance EM, seeded by ``init``.

    Log-likelihood is non-decreasing per iteration (a property test
    asserts this); iteration stops at ``max_iter`` or when the relative
    improvement drops below ``tol``.
    """
    sub = init.project(data)
    means = init.means.copy()
    covs = init.covariances.copy()
    weights = init.weights.copy()
    history: list[float] = []
    mixture = GaussianMixture(means, covs, weights, init.attributes)

    for _ in range(max_iter):
        log_resp = mixture.log_responsibilities(sub)
        history.append(mixture.log_likelihood(sub))
        resp = np.exp(log_resp)
        totals = resp.sum(axis=0)
        k = mixture.num_components
        for j in range(k):
            means[j], covs[j] = _moments(sub, resp[:, j], reg)
        weights = np.clip(totals / len(sub), 1e-12, None)
        weights /= weights.sum()
        mixture = GaussianMixture(means, covs, weights, init.attributes)
        if len(history) >= 2:
            previous, current = history[-2], history[-1]
            if abs(current - previous) <= tol * (abs(previous) + 1.0):
                break
    mixture.log_likelihood_history = history
    return mixture
