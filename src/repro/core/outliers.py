"""Outlier detection: naive moments vs. the MVB estimator (Section 4.2.2).

Both variants flag a cluster member as an outlier when its squared
Mahalanobis distance to the cluster's location/scatter estimate exceeds
the chi-squared critical value with ``|A_rel|`` degrees of freedom at
``alpha = 0.001``.

- *Naive*: mean and covariance from **all** members — suffers from the
  masking effect (outliers inflate the very estimate meant to expose
  them).
- *MVB*: an approximate minimum-volume-ellipsoid.  Centre = the
  dimension-wise median of the members, radius = the median Euclidean
  distance to that centre; the moments are then re-estimated from only
  the points inside that ball (half the cluster), which resists masking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from scipy import stats as sps

from repro.core.stats import chi2_critical_value, mahalanobis_squared


def ball_consistency_factor(dim: int) -> float:
    """Consistency correction for a covariance estimated from the points
    inside the median-radius ball.

    Truncating a Gaussian at its median radius shrinks the sample
    covariance by ``P(chi2_{m+2} <= q) / 0.5`` with ``q`` the chi-squared
    median — the standard MCD/MVE-style consistency constant.  Without
    the correction the Mahalanobis distances of ordinary members are
    systematically inflated and the detector over-flags.
    """
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    q = float(sps.chi2.ppf(0.5, df=dim))
    inner_mass = float(sps.chi2.cdf(q, df=dim + 2))
    return 0.5 / max(inner_mass, 1e-12)


@dataclass(frozen=True)
class MVBEstimate:
    """Minimum-volume-ball location/scatter estimate of one cluster."""

    center: np.ndarray  # dimension-wise median
    radius: float  # median distance to the centre
    mean: np.ndarray  # moments of the points inside the ball
    covariance: np.ndarray
    n_inside: int


def dimensionwise_median(points: np.ndarray) -> np.ndarray:
    """``Md_d`` of Section 5.5: the per-attribute sample median."""
    if len(points) == 0:
        raise ValueError("cannot take the median of zero points")
    return np.median(points, axis=0)


def mvb_estimate(points: np.ndarray, reg: float = 1e-9) -> MVBEstimate:
    """Fit the minimum-volume ball and the inside-ball moments.

    ``points`` are the cluster members already projected to ``A_rel``.
    The ball contains (at least) half of the members by construction of
    the median radius.

    A covariance estimated from fewer inside-ball points than twice the
    dimensionality is unusable (singular or wildly ill-conditioned, so
    nearly every point would be flagged); in that small-sample regime
    the estimate falls back to the diagonal variances of *all* members,
    which stays robust to location outliers while giving a sane scale.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    dim = points.shape[1]
    center = dimensionwise_median(points)
    distances = np.linalg.norm(points - center, axis=1)
    radius = float(np.median(distances))
    inside = points[distances <= radius]
    if len(inside) == 0:
        inside = points
    mean = inside.mean(axis=0)
    if len(inside) >= max(2, 2 * dim):
        diff = inside - mean
        cov = ball_consistency_factor(dim) * (diff.T @ diff) / (len(inside) - 1)
    else:
        variances = points.var(axis=0, ddof=1) if len(points) > 1 else np.ones(dim)
        cov = np.diag(np.maximum(variances, 1e-12))
    cov = cov + reg * np.eye(dim)
    return MVBEstimate(
        center=center,
        radius=radius,
        mean=mean,
        covariance=cov,
        n_inside=len(inside),
    )


def detect_outliers_naive(
    members_sub: np.ndarray,
    mean: np.ndarray,
    covariance: np.ndarray,
    alpha: float = 0.001,
) -> np.ndarray:
    """Boolean outlier mask using the supplied (EM) moments directly.

    The chi-squared cutoff is widened by the same small-sample
    inflation as the MVB detector (the moments come from the cluster's
    own members)."""
    if len(members_sub) == 0:
        return np.zeros(0, dtype=bool)
    dof = members_sub.shape[1]
    inflation = small_sample_inflation(len(members_sub), dof)
    if not np.isfinite(inflation):
        return np.zeros(len(members_sub), dtype=bool)
    critical = chi2_critical_value(dof, alpha) * inflation
    d2 = mahalanobis_squared(members_sub, mean, covariance)
    return d2 > critical


def small_sample_inflation(n_estimate: int, dim: int) -> float:
    """Correction factor for chi-squared outlier cutoffs under
    small-sample covariance estimates.

    A squared Mahalanobis distance computed with a covariance estimated
    from ``n`` points in ``m`` dimensions is inflated by roughly
    ``(n - 1) / (n - m - 2)`` relative to the true-parameter chi-squared
    reference; comparing against the uncorrected critical value then
    over-flags massively when ``n`` is close to ``m``.  The paper can
    ignore this (it targets huge data, where the factor is ~1); the
    colon-scale experiments cannot.  Returns 1 for comfortable sample
    sizes and the inflation factor otherwise.
    """
    if n_estimate <= dim + 2:
        return float("inf")
    return max(1.0, (n_estimate - 1) / (n_estimate - dim - 2))


def detect_outliers_mvb(
    members_sub: np.ndarray,
    alpha: float = 0.001,
) -> tuple[np.ndarray, MVBEstimate]:
    """Boolean outlier mask using MVB-estimated moments.

    Returns the mask together with the fitted :class:`MVBEstimate` so
    drivers can report the robust moments (the MR formulation computes
    the same estimate with three jobs, Section 5.5).  The chi-squared
    cutoff is widened by :func:`small_sample_inflation` of the
    inside-ball count; when the covariance cannot be estimated at all
    (fewer points than dimensions) nothing is flagged.
    """
    if len(members_sub) == 0:
        raise ValueError("cluster has no members")
    estimate = mvb_estimate(members_sub)
    dof = members_sub.shape[1]
    inflation = small_sample_inflation(estimate.n_inside, dof)
    if not np.isfinite(inflation):
        return np.zeros(len(members_sub), dtype=bool), estimate
    critical = chi2_critical_value(dof, alpha) * inflation
    d2 = mahalanobis_squared(members_sub, estimate.mean, estimate.covariance)
    return d2 > critical, estimate


# -- exact(er) MVE: the paper's unevaluated extension ------------------
#
# Section 4.2.2: "The exact MVE estimator will probably result in a
# better clustering quality but ... the calculation of MVE is a
# computationally expensive step.  Due to our focus on large data sets
# we therefore leave this point not evaluated."  This implementation
# closes that gap for the ablation bench: the minimum-volume ellipsoid
# covering half the points is approximated by Khachiyan's MVEE algorithm
# wrapped in FAST-MCD-style concentration steps (fit ellipsoid on the
# current half, re-select the half with the smallest ellipsoid
# distances, repeat until the subset stabilises).


@dataclass(frozen=True)
class MVEEstimate:
    """Minimum-volume-ellipsoid location/scatter estimate."""

    mean: np.ndarray
    covariance: np.ndarray
    subset_size: int
    iterations: int


def minimum_volume_enclosing_ellipsoid(
    points: np.ndarray,
    tolerance: float = 1e-4,
    max_iterations: int = 500,
) -> tuple[np.ndarray, np.ndarray]:
    """Khachiyan's algorithm: the MVEE of a point set.

    Returns ``(center, shape)`` with every point satisfying
    ``(x - center)^T shape (x - center) <= 1`` (up to ``tolerance``).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n, m = points.shape
    if n == 0:
        raise ValueError("cannot fit an ellipsoid to zero points")
    if n == 1:
        return points[0].copy(), np.eye(m) * 1e12
    q = np.vstack([points.T, np.ones(n)])  # (m+1, n)
    u = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        weighted = q @ np.diag(u) @ q.T
        try:
            inv = np.linalg.inv(weighted)
        except np.linalg.LinAlgError:
            inv = np.linalg.pinv(weighted)
        distances = np.einsum("ij,jk,ik->i", q.T, inv, q.T)
        j = int(np.argmax(distances))
        maximum = distances[j]
        step = (maximum - m - 1.0) / ((m + 1.0) * (maximum - 1.0))
        if step <= tolerance:
            break
        u = (1.0 - step) * u
        u[j] += step
    center = points.T @ u
    diff = points - center
    scatter = (diff.T * u) @ diff
    try:
        shape = np.linalg.inv(scatter) / m
    except np.linalg.LinAlgError:
        shape = np.linalg.pinv(scatter) / m
    return center, shape


def mve_estimate(
    points: np.ndarray,
    max_concentration_steps: int = 20,
    reg: float = 1e-9,
) -> MVEEstimate:
    """Half-sample minimum-volume-ellipsoid moments.

    Concentration iteration: fit the MVEE of the current half-sample,
    rank all points by their ellipsoid distance, keep the closest half,
    repeat until the subset stabilises.  The final covariance gets the
    same median-truncation consistency correction as the MVB.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n, dim = points.shape
    h = (n + dim + 1) // 2
    h = min(max(h, min(n, dim + 1)), n)

    # Seed with the MVB's inside-ball half.
    center = dimensionwise_median(points)
    order = np.argsort(np.linalg.norm(points - center, axis=1))
    subset = np.sort(order[:h])

    iterations = 0
    for iterations in range(1, max_concentration_steps + 1):
        ell_center, ell_shape = minimum_volume_enclosing_ellipsoid(
            points[subset]
        )
        diff = points - ell_center
        distances = np.einsum("ij,jk,ik->i", diff, ell_shape, diff)
        new_subset = np.sort(np.argsort(distances)[:h])
        if np.array_equal(new_subset, subset):
            break
        subset = new_subset

    chosen = points[subset]
    mean = chosen.mean(axis=0)
    if len(chosen) >= max(2, 2 * dim):
        diff = chosen - mean
        cov = ball_consistency_factor(dim) * (diff.T @ diff) / (len(chosen) - 1)
    else:
        variances = points.var(axis=0, ddof=1) if n > 1 else np.ones(dim)
        cov = np.diag(np.maximum(variances, 1e-12))
    cov = cov + reg * np.eye(dim)
    return MVEEstimate(
        mean=mean,
        covariance=cov,
        subset_size=int(h),
        iterations=iterations,
    )


def detect_outliers_mve(
    members_sub: np.ndarray,
    alpha: float = 0.001,
) -> tuple[np.ndarray, MVEEstimate]:
    """Boolean outlier mask using half-sample MVE moments."""
    if len(members_sub) == 0:
        raise ValueError("cluster has no members")
    estimate = mve_estimate(members_sub)
    dof = members_sub.shape[1]
    inflation = small_sample_inflation(estimate.subset_size, dof)
    if not np.isfinite(inflation):
        return np.zeros(len(members_sub), dtype=bool), estimate
    critical = chi2_critical_value(dof, alpha) * inflation
    d2 = mahalanobis_squared(members_sub, estimate.mean, estimate.covariance)
    return d2 > critical, estimate
