"""Definitions 1-5 of the paper as value types.

- :class:`Interval` — a closed range on one attribute (Definition 1).
- :class:`Signature` — a p-signature: intervals on pairwise-disjoint
  attributes (Definition 2).
- :class:`ClusterCore` — a proven, maximal signature with its measured
  and expected support (Definition 5).
- :class:`ProjectedCluster` — a set of member points plus a set of
  relevant attributes (Definition 3), with the tightened output
  signature attached once known.
- :class:`ClusteringResult` — the algorithm output: clusters, outlier
  indices and run metadata.

All attributes are 0-based column indices into the (normalised) data
matrix; the paper's convention of values in ``[0, 1]`` is asserted by
the pipeline entry points, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lower, upper]`` on one attribute."""

    attribute: int
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.attribute < 0:
            raise ValueError(f"attribute index must be >= 0, got {self.attribute}")
        if not self.lower <= self.upper:
            raise ValueError(
                f"empty interval on attribute {self.attribute}: "
                f"[{self.lower}, {self.upper}]"
            )

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def contains_column(self, column: np.ndarray) -> np.ndarray:
        """Vectorised membership test over a 1-D array of values."""
        return (column >= self.lower) & (column <= self.upper)

    def overlaps(self, other: "Interval") -> bool:
        if self.attribute != other.attribute:
            return False
        return self.lower <= other.upper and other.lower <= self.upper

    def covers(self, other: "Interval") -> bool:
        """True when ``other`` lies fully inside this interval
        (same attribute)."""
        return (
            self.attribute == other.attribute
            and self.lower <= other.lower
            and other.upper <= self.upper
        )

    def merge(self, other: "Interval") -> "Interval":
        """Union span of two intervals on the same attribute."""
        if self.attribute != other.attribute:
            raise ValueError(
                f"cannot merge intervals on attributes "
                f"{self.attribute} and {other.attribute}"
            )
        return Interval(
            self.attribute, min(self.lower, other.lower), max(self.upper, other.upper)
        )

    def __repr__(self) -> str:
        return f"I(a{self.attribute}:[{self.lower:.4g},{self.upper:.4g}])"


class Signature:
    """A p-signature: intervals on pairwise-disjoint attributes.

    Immutable and hashable; intervals are kept sorted by attribute so
    two signatures with the same interval set compare and hash equal.
    """

    __slots__ = ("_intervals", "_hash")

    def __init__(self, intervals: Sequence[Interval] | frozenset[Interval]) -> None:
        ordered = tuple(sorted(intervals, key=lambda iv: iv.attribute))
        attrs = [iv.attribute for iv in ordered]
        if len(set(attrs)) != len(attrs):
            raise ValueError(
                f"signature intervals must be on disjoint attributes, got {attrs}"
            )
        object.__setattr__(self, "_intervals", ordered)
        object.__setattr__(self, "_hash", hash(ordered))

    # -- container protocol -------------------------------------------

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __contains__(self, interval: Interval) -> bool:
        return interval in self._intervals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(iv) for iv in self._intervals)
        return f"Signature({inner})"

    # -- Definition 2 accessors ----------------------------------------

    @property
    def attributes(self) -> frozenset[int]:
        """``Attr(S)`` — the attribute set of this signature."""
        return frozenset(iv.attribute for iv in self._intervals)

    @property
    def p(self) -> int:
        """The signature's dimensionality ``p``."""
        return len(self._intervals)

    def volume(self) -> float:
        """Product of interval widths (the hyperrectangle volume used in
        the expected-support formula, Eq. 7)."""
        result = 1.0
        for iv in self._intervals:
            result *= iv.width
        return result

    def interval_on(self, attribute: int) -> Interval | None:
        for iv in self._intervals:
            if iv.attribute == attribute:
                return iv
        return None

    # -- set algebra -----------------------------------------------------

    def extend(self, interval: Interval) -> "Signature":
        """``S ∪ {I}`` — add an interval on a new attribute."""
        if interval.attribute in self.attributes:
            raise ValueError(
                f"signature already has an interval on attribute "
                f"{interval.attribute}"
            )
        return Signature(self._intervals + (interval,))

    def without(self, interval: Interval) -> "Signature":
        """``S \\ {I}``."""
        if interval not in self._intervals:
            raise ValueError(f"{interval} not in signature")
        return Signature(tuple(iv for iv in self._intervals if iv != interval))

    def issubset(self, other: "Signature") -> bool:
        return set(self._intervals) <= set(other._intervals)

    def is_proper_subset(self, other: "Signature") -> bool:
        return self.issubset(other) and len(self) < len(other)

    # -- support (Definitions 1-2) ---------------------------------------

    def support_mask(self, data: np.ndarray) -> np.ndarray:
        """Boolean mask of the support set ``SuppSet(S)`` over ``data``."""
        mask = np.ones(len(data), dtype=bool)
        for iv in self._intervals:
            mask &= iv.contains_column(data[:, iv.attribute])
        return mask

    def support(self, data: np.ndarray) -> int:
        """``Supp(S)`` — cardinality of the support set."""
        return int(self.support_mask(data).sum())

    def contains_point(self, point: np.ndarray) -> bool:
        return all(iv.contains(point[iv.attribute]) for iv in self._intervals)

    def expected_support(self, n: int) -> float:
        """``Supp_exp(S)`` under global uniformity (Eq. 7)."""
        return n * self.volume()


@dataclass(frozen=True)
class ClusterCore:
    """A proven, maximal, non-redundant signature (Definition 5)."""

    signature: Signature
    support: int
    expected_support: float

    @property
    def interestingness(self) -> float:
        """``Supp / Supp_exp`` — the ratio ordering of Eq. 6."""
        if self.expected_support <= 0:
            return float("inf")
        return self.support / self.expected_support

    @property
    def attributes(self) -> frozenset[int]:
        return self.signature.attributes

    def __repr__(self) -> str:
        return (
            f"ClusterCore({self.signature!r}, supp={self.support}, "
            f"exp={self.expected_support:.3g})"
        )


@dataclass
class ProjectedCluster:
    """A found cluster ``Cl = (X, Y)`` (Definition 3) with its tightened
    output signature (Section 3.2.2, interval tightening)."""

    members: np.ndarray
    relevant_attributes: frozenset[int]
    signature: Signature | None = None
    core: ClusterCore | None = None

    def __post_init__(self) -> None:
        self.members = np.asarray(self.members, dtype=np.int64)

    @property
    def size(self) -> int:
        return len(self.members)

    def member_set(self) -> frozenset[int]:
        return frozenset(int(i) for i in self.members)

    def micro_objects(self) -> frozenset[tuple[int, int]]:
        """The (object, attribute) micro-object set used by the subspace
        quality measures in :mod:`repro.eval`."""
        return frozenset(
            (int(obj), attr)
            for obj in self.members
            for attr in self.relevant_attributes
        )

    def __repr__(self) -> str:
        attrs = sorted(self.relevant_attributes)
        return f"ProjectedCluster(|X|={self.size}, Y={attrs})"


@dataclass
class ClusteringResult:
    """Final algorithm output: found clusters, outliers and metadata."""

    clusters: list[ProjectedCluster]
    outliers: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    n_points: int = 0
    n_dims: int = 0
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.outliers = np.asarray(self.outliers, dtype=np.int64)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def labels(self) -> np.ndarray:
        """Per-point cluster id (first matching cluster), -1 for outliers
        and unassigned points.  Projected clusterings assign each point
        to at most one cluster, so "first" is unambiguous except in the
        Light variant's multi-core overlap regions."""
        labels = np.full(self.n_points, -1, dtype=np.int64)
        for cid in range(len(self.clusters) - 1, -1, -1):
            labels[self.clusters[cid].members] = cid
        labels[self.outliers] = -1
        return labels

    def summary(self) -> str:
        lines = [
            f"{self.num_clusters} clusters over {self.n_points} points "
            f"({len(self.outliers)} outliers)"
        ]
        for cid, cluster in enumerate(self.clusters):
            attrs = ",".join(str(a) for a in sorted(cluster.relevant_attributes))
            lines.append(f"  cluster {cid}: |X|={cluster.size} Y={{{attrs}}}")
        return "\n".join(lines)
