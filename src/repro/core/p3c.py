"""The original P3C algorithm (Moise, Sander & Ester, ICDM 2006).

Implemented as the P3C+ engine with every P3C+ extension switched off:

- Sturges binning instead of Freedman-Diaconis (Section 4.1.1),
- Poisson test only, no effect-size complement (Section 4.1.2),
- no redundancy filter (Section 4.2.1),
- naive moment-based outlier detection (Section 4.2.2),
- attribute inspection without AI proving (Section 4.2.3).

It serves as the baseline for the model comparison in Sections 7.4 and
7.6 (colon cancer).
"""

from __future__ import annotations

import numpy as np

from repro.core.p3c_plus import P3CPlus, P3CPlusConfig
from repro.core.types import ClusteringResult

#: Original-P3C behaviour expressed in the shared configuration space.
P3C_CONFIG = P3CPlusConfig(
    binning="sturges",
    theta_cc=None,
    redundancy_filter=False,
    outlier_method="naive",
    ai_proving=False,
)


class P3C:
    """Original P3C (baseline)."""

    def __init__(self, config: P3CPlusConfig | None = None) -> None:
        self.config = config or P3C_CONFIG
        self._engine = P3CPlus(self.config)

    def fit(self, data: np.ndarray) -> ClusteringResult:
        return self._engine.fit(data)
