"""Histogram building and bin-count rules (Sections 4.1.1 and 5.1).

The original P3C uses Sturges' rule; P3C+ replaces it with the
Freedman-Diaconis rule under the simplifying assumption that each
attribute is uniform on [0, 1], i.e. ``IQR = 1/2`` (Section 4.1.1), so

    bin_size = 2 * (1/2) * n^(-1/3) = n^(-1/3)   =>   #bins = n^(1/3).

Histograms are equi-width over [0, 1]; the bin of a value x is
``max(1, ceil(m * x))`` in the paper's 1-based notation (Eq. 8), i.e.
``min(m - 1, floor(m * x))`` 0-based with the right edge closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

import numpy as np

from repro.core.types import Interval


def sturges_bins(n: int) -> int:
    """Sturges' rule: ``ceil(1 + log2 n)`` (used by original P3C)."""
    if n < 1:
        raise ValueError(f"sample size must be >= 1, got {n}")
    return max(1, ceil(1 + log2(n)))


def freedman_diaconis_bins(n: int, iqr: float = 0.5) -> int:
    """Freedman-Diaconis rule on a [0, 1] attribute (used by P3C+).

    ``bin_size = 2 * IQR * n^(-1/3)``; with the paper's uniformity
    simplification ``IQR = 1/2`` this is ``n^(-1/3)`` and the bin count
    is ``ceil(n^(1/3))``.
    """
    if n < 1:
        raise ValueError(f"sample size must be >= 1, got {n}")
    if not 0 < iqr <= 1:
        raise ValueError(f"IQR on a [0,1] attribute must be in (0, 1], got {iqr}")
    bin_size = 2.0 * iqr * n ** (-1.0 / 3.0)
    return max(1, ceil(1.0 / bin_size))


def bin_index(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Vectorised Eq. 8 binning of values in [0, 1] (0-based bins)."""
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    idx = np.ceil(num_bins * np.asarray(values, dtype=float)).astype(np.int64)
    return np.clip(idx, 1, num_bins) - 1


@dataclass(frozen=True)
class Histogram:
    """An equi-width histogram of one attribute over [0, 1]."""

    attribute: int
    counts: np.ndarray  # shape (num_bins,); int64, or float64 when weighted

    def __post_init__(self) -> None:
        # Integer inputs keep the classic int64 counts byte-for-byte;
        # float inputs (weighted coreset histograms) stay float64 so
        # fractional weighted counts are not silently truncated.
        counts = np.asarray(self.counts)
        dtype = np.float64 if counts.dtype.kind == "f" else np.int64
        object.__setattr__(self, "counts", counts.astype(dtype).copy())
        if self.counts.ndim != 1 or len(self.counts) < 1:
            raise ValueError("histogram needs at least one bin")

    @property
    def num_bins(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> float:
        total = self.counts.sum()
        return int(total) if self.counts.dtype.kind == "i" else float(total)

    @property
    def bin_width(self) -> float:
        return 1.0 / self.num_bins

    def bin_interval(self, index: int) -> Interval:
        """The [lower, upper] range covered by bin ``index`` (0-based)."""
        if not 0 <= index < self.num_bins:
            raise IndexError(index)
        width = self.bin_width
        return Interval(self.attribute, index * width, (index + 1) * width)

    def bins_to_interval(self, first: int, last: int) -> Interval:
        """The range covered by the contiguous bin run [first, last]."""
        if not 0 <= first <= last < self.num_bins:
            raise IndexError((first, last))
        width = self.bin_width
        return Interval(self.attribute, first * width, (last + 1) * width)


def build_histogram(
    data: np.ndarray,
    attribute: int,
    num_bins: int,
    mask: np.ndarray | None = None,
) -> Histogram:
    """Histogram of one attribute, optionally restricted to masked rows.

    The masked form is what attribute inspection uses to build per-cluster
    histograms (Section 5.6).
    """
    column = data[:, attribute]
    if mask is not None:
        column = column[mask]
    idx = bin_index(column, num_bins)
    counts = np.bincount(idx, minlength=num_bins)
    return Histogram(attribute=attribute, counts=counts)


def build_all_histograms(
    data: np.ndarray,
    num_bins: int,
    mask: np.ndarray | None = None,
    attributes: list[int] | None = None,
) -> list[Histogram]:
    """Histograms of every (or the given) attribute in one pass each."""
    attrs = attributes if attributes is not None else list(range(data.shape[1]))
    return [build_histogram(data, a, num_bins, mask) for a in attrs]
