"""Statistical machinery: Poisson / chi-squared tests and effect size.

Implements the statistical tool-kit of Sections 3-4:

- the Poisson significance test used in candidate proving (Eq. 1), with
  the Gaussian transformation the paper describes for thresholds below
  the reach of floating-point cumulative probabilities (Section 7.4.2's
  side remark);
- the chi-squared uniformity test used for relevant-attribute detection;
- Cohen's d_cc effect size with sigma = Supp_exp (Eq. 4), the P3C+
  complement to the significance test;
- Mahalanobis distances and the chi-squared critical value used by
  outlier detection (Section 4.2.2).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import stats as sps

#: Expected-support level below which the exact Poisson tail is used;
#: above it the Gaussian approximation (mu = lambda, sigma = sqrt(lambda))
#: is both accurate and immune to floating-point underflow.
GAUSSIAN_APPROX_MIN_LAMBDA = 100.0


def poisson_sf(observed: float, expected: float) -> float:
    """``P(X >= observed)`` for ``X ~ Poisson(expected)``.

    Uses the exact survival function for small ``expected`` and the
    Gaussian approximation with continuity correction for large ones.
    Returns 1.0 when ``expected`` is not positive and something was
    observed is impossible to beat -- an expected support of zero means
    any positive observation is infinitely surprising, so we return 0.0
    for ``observed > 0`` and 1.0 otherwise.
    """
    if expected < 0:
        raise ValueError(f"expected support must be >= 0, got {expected}")
    if expected == 0:
        return 0.0 if observed > 0 else 1.0
    if expected < GAUSSIAN_APPROX_MIN_LAMBDA:
        return float(sps.poisson.sf(np.ceil(observed) - 1, expected))
    z = (observed - 0.5 - expected) / np.sqrt(expected)
    return float(sps.norm.sf(z))


def poisson_log_sf(observed: float, expected: float) -> float:
    """Natural log of :func:`poisson_sf`, stable down to ~1e-10^8.

    Needed by the Figure 5 threshold sweep, which probes significance
    levels as extreme as 1e-140.
    """
    if expected <= 0:
        return -np.inf if observed > 0 else 0.0
    if expected < GAUSSIAN_APPROX_MIN_LAMBDA:
        return float(sps.poisson.logsf(np.ceil(observed) - 1, expected))
    z = (observed - 0.5 - expected) / np.sqrt(expected)
    return float(sps.norm.logsf(z))


def poisson_deviation_significant(
    observed: float,
    expected: float,
    alpha: float = 0.01,
) -> bool:
    """The paper's ``x <_p y`` relation: is ``observed`` significantly
    larger than ``expected`` at level ``alpha``?

    Implemented in z-space (the Gaussian transformation of Section
    7.4.2) whenever the expected support is large, so that thresholds far
    below float precision (1e-140) remain decidable.
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if expected == 0:
        return observed > 0
    if expected < GAUSSIAN_APPROX_MIN_LAMBDA:
        # Exact tail; alpha values this code path sees are moderate.
        return poisson_log_sf(observed, expected) < np.log(alpha)
    z = (observed - 0.5 - expected) / np.sqrt(expected)
    return z > _normal_critical_z(alpha)


@lru_cache(maxsize=256)
def _normal_critical_z(alpha: float) -> float:
    """Memoised upper-tail critical z value (candidate proving calls
    this once per tested interval; scipy's isf is comparatively slow)."""
    return float(sps.norm.isf(alpha))


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish's effective sample size ``(sum w)^2 / sum w^2``.

    A weighted sample of ``m`` points carrying total weight ``W`` does
    not have the statistical power of ``W`` observations; tests on
    weighted counts (chi-squared uniformity, Poisson proving) must run
    at the ESS scale or they over-reject, exactly the failure mode a
    coreset summary would otherwise introduce.  Uniform weights give
    ESS = m (the summary behaves like its own sample size); highly
    skewed weights give ESS << m.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or len(weights) == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weights must have positive total")
    return total**2 / float((weights**2).sum())


def ess_scale(weights: np.ndarray) -> float:
    """The factor mapping weighted counts to ESS-scale counts.

    Multiplying weighted bin/support counts (which sum to ``W``) by
    ``ESS / W`` yields counts that sum to the effective sample size, so
    the unmodified chi-squared / Poisson machinery runs at the honest
    power level.  For a uniform coreset of ``m`` points this reduces
    weighted counts exactly to the raw per-summary-point counts.
    """
    weights = np.asarray(weights, dtype=float)
    return effective_sample_size(weights) / float(weights.sum())


def cohens_d_cc(observed: float, expected: float) -> float:
    """Cohen's d_cc (Eq. 4) with sigma = Supp_exp: the *relative*
    deviation of the observed from the expected support."""
    if expected <= 0:
        return float("inf") if observed > 0 else 0.0
    return (observed - expected) / expected


def chi_squared_uniformity_pvalue(counts: np.ndarray) -> float:
    """P-value of the chi-squared goodness-of-fit test of ``counts``
    against the uniform distribution over its bins.

    A single remaining bin (or an all-zero histogram) is trivially
    uniform (p = 1).
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1:
        raise ValueError("counts must be a 1-D histogram")
    if np.any(counts < 0):
        raise ValueError("bin counts must be non-negative")
    k = len(counts)
    total = counts.sum()
    if k <= 1 or total == 0:
        return 1.0
    expected = total / k
    statistic = float(((counts - expected) ** 2 / expected).sum())
    return float(sps.chi2.sf(statistic, df=k - 1))


def is_uniform(counts: np.ndarray, alpha: float = 0.001) -> bool:
    """True when the chi-squared test cannot reject uniformity."""
    return chi_squared_uniformity_pvalue(counts) >= alpha


def mahalanobis_squared(
    points: np.ndarray,
    mean: np.ndarray,
    cov: np.ndarray,
) -> np.ndarray:
    """Squared Mahalanobis distance of each row of ``points`` to
    ``(mean, cov)``.

    The covariance is regularised (ridge on the diagonal) when singular,
    which happens routinely for tiny clusters or degenerate attributes.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    mean = np.asarray(mean, dtype=float)
    cov = np.atleast_2d(np.asarray(cov, dtype=float))
    diff = points - mean
    inv = _robust_inverse(cov)
    return np.einsum("ij,jk,ik->i", diff, inv, diff)


def _robust_inverse(cov: np.ndarray, ridge: float = 1e-9) -> np.ndarray:
    dim = cov.shape[0]
    attempt = cov
    for _ in range(40):
        try:
            return np.linalg.inv(attempt)
        except np.linalg.LinAlgError:
            attempt = attempt + ridge * np.eye(dim)
            ridge *= 10
    return np.linalg.pinv(cov)


@lru_cache(maxsize=1024)
def chi2_critical_value(dof: int, alpha: float = 0.001) -> float:
    """Critical value of the chi-squared distribution: points whose
    squared Mahalanobis distance exceeds it are outliers (Section 4.2.2,
    alpha = 0.001)."""
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    return float(sps.chi2.isf(alpha, df=dof))


def probability_exceeds_relative(mu: float, factor: float = 1.01) -> float:
    """``P(X >= factor * mu)`` for ``X ~ Poisson(mu)`` under the *null*.

    This tail vanishes as ``mu`` grows (the relative deviation is worth
    ever more standard deviations) — which is exactly why the test's
    power at a fixed relative effect explodes; see
    :func:`poisson_power_relative_effect` for the quantity Figure 1
    plots.
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    return poisson_sf(factor * mu, mu)


def poisson_power_relative_effect(
    mu: float,
    factor: float = 1.01,
    alpha: float = 0.01,
) -> float:
    """Power of the Poisson test at a fixed *relative* effect (Figure 1).

    The test rejects when the observed count reaches the upper-alpha
    critical value of ``Poisson(mu)``; the power is the probability of
    that happening when the true rate is ``factor * mu``.  For growing
    ``mu`` (larger data sets at constant relative deviation) the power
    approaches 1: a 1 % deviation — significant, but irrelevant for
    clustering — is then flagged almost surely (Section 4.1.2).
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if mu < GAUSSIAN_APPROX_MIN_LAMBDA:
        critical = float(sps.poisson.isf(alpha, mu)) + 1.0
    else:
        critical = mu + _normal_critical_z(alpha) * np.sqrt(mu) + 0.5
    return poisson_sf(critical, factor * mu)
