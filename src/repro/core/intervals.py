"""Relevant-interval detection (Section 3.2.2, histogram building step).

Per attribute: run the chi-squared uniformity test on the bin counts; as
long as the *unmarked* bins are non-uniform, mark the highest-support
bin and remove it from the test.  Adjacent marked bins are then merged
into maximal relevant intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binning import Histogram
from repro.core.stats import chi_squared_uniformity_pvalue
from repro.core.types import Interval


@dataclass(frozen=True)
class AttributeIntervals:
    """The marked bins and merged intervals found on one attribute."""

    attribute: int
    marked_bins: tuple[int, ...]
    intervals: tuple[Interval, ...]

    @property
    def is_relevant(self) -> bool:
        return bool(self.intervals)


def mark_relevant_bins(counts: np.ndarray, alpha: float = 0.001) -> list[int]:
    """Indices of bins marked relevant by iterative removal.

    Marks the highest-count remaining bin while the remaining bins fail
    the uniformity test at level ``alpha``.  Ties are broken towards the
    lowest bin index for determinism.
    """
    # Float counts pass through un-truncated (weighted/coreset
    # histograms carry fractional counts); integer input is unchanged
    # bitwise since the test always ran in float space anyway.
    counts = np.asarray(counts, dtype=float)
    remaining = counts.copy()
    active = np.ones(len(counts), dtype=bool)
    marked: list[int] = []
    while active.sum() > 1:
        pvalue = chi_squared_uniformity_pvalue(remaining[active])
        if pvalue >= alpha:
            break
        candidates = np.where(active)[0]
        best = candidates[np.argmax(remaining[candidates])]
        marked.append(int(best))
        active[best] = False
    return sorted(marked)


def merge_adjacent_bins(
    histogram: Histogram,
    marked_bins: list[int],
) -> list[Interval]:
    """Merge runs of adjacent marked bins into maximal intervals."""
    if not marked_bins:
        return []
    marked = sorted(marked_bins)
    intervals: list[Interval] = []
    run_start = marked[0]
    previous = marked[0]
    for b in marked[1:]:
        if b == previous + 1:
            previous = b
            continue
        intervals.append(histogram.bins_to_interval(run_start, previous))
        run_start = b
        previous = b
    intervals.append(histogram.bins_to_interval(run_start, previous))
    return intervals


def find_relevant_intervals_for_histogram(
    histogram: Histogram,
    alpha: float = 0.001,
) -> AttributeIntervals:
    """Full interval-detection procedure for one attribute histogram."""
    marked = mark_relevant_bins(histogram.counts, alpha=alpha)
    intervals = merge_adjacent_bins(histogram, marked)
    return AttributeIntervals(
        attribute=histogram.attribute,
        marked_bins=tuple(marked),
        intervals=tuple(intervals),
    )


def find_relevant_intervals(
    histograms: list[Histogram],
    alpha: float = 0.001,
) -> list[Interval]:
    """The set of all potentially interesting intervals, ``Î``, across
    every attribute (Section 3.2.2)."""
    intervals: list[Interval] = []
    for histogram in histograms:
        found = find_relevant_intervals_for_histogram(histogram, alpha=alpha)
        intervals.extend(found.intervals)
    return intervals
