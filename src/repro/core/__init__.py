"""The paper's clustering model: P3C and P3C+ (in-memory reference).

Everything in this package is substrate-free: pure NumPy implementations
of the definitions in Sections 3-4 of the paper.  The MapReduce drivers
in :mod:`repro.mr` re-express the exact same computations as MR jobs and
are tested for equality against these references.
"""

from repro.core.apriori import generate_candidates, join_signatures, maximal_signatures
from repro.core.attribute_inspection import inspect_attributes
from repro.core.binning import (
    Histogram,
    build_histogram,
    freedman_diaconis_bins,
    sturges_bins,
)
from repro.core.em import GaussianMixture, fit_em, initialize_from_cores
from repro.core.intervals import find_relevant_intervals
from repro.core.outliers import (
    MVBEstimate,
    MVEEstimate,
    detect_outliers_mvb,
    detect_outliers_mve,
    detect_outliers_naive,
    minimum_volume_enclosing_ellipsoid,
    mvb_estimate,
    mve_estimate,
)
from repro.core.p3c import P3C
from repro.core.p3c_plus import P3CPlus, P3CPlusConfig
from repro.core.proving import ProvenSignature, SupportTester
from repro.core.redundancy import filter_redundant, interestingness
from repro.core.stats import (
    chi_squared_uniformity_pvalue,
    cohens_d_cc,
    mahalanobis_squared,
    poisson_deviation_significant,
    poisson_sf,
)
from repro.core.tightening import tighten_intervals
from repro.core.types import (
    ClusterCore,
    ClusteringResult,
    Interval,
    ProjectedCluster,
    Signature,
)

__all__ = [
    "ClusterCore",
    "ClusteringResult",
    "GaussianMixture",
    "Histogram",
    "Interval",
    "MVBEstimate",
    "MVEEstimate",
    "P3C",
    "P3CPlus",
    "P3CPlusConfig",
    "ProjectedCluster",
    "ProvenSignature",
    "Signature",
    "SupportTester",
    "build_histogram",
    "chi_squared_uniformity_pvalue",
    "cohens_d_cc",
    "detect_outliers_mvb",
    "detect_outliers_mve",
    "detect_outliers_naive",
    "filter_redundant",
    "find_relevant_intervals",
    "fit_em",
    "freedman_diaconis_bins",
    "generate_candidates",
    "initialize_from_cores",
    "inspect_attributes",
    "interestingness",
    "join_signatures",
    "mahalanobis_squared",
    "maximal_signatures",
    "minimum_volume_enclosing_ellipsoid",
    "mvb_estimate",
    "mve_estimate",
    "poisson_deviation_significant",
    "poisson_sf",
    "sturges_bins",
    "tighten_intervals",
]
