"""Apriori-style candidate generation over p-signatures (Algorithm 1).

Two p-signatures join to a (p+1)-signature when they share exactly
``p - 1`` intervals and their distinguishing intervals lie on different
attributes.  Candidate generation enumerates all joinable pairs; the
optional Apriori prune additionally requires every p-subsignature of a
candidate to be present in the generating set (the multi-level MR
collection of Section 5.3 deliberately skips this prune, trading extra
candidates for fewer proving jobs).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.core.types import Interval, Signature


def join_signatures(first: Signature, second: Signature) -> Signature | None:
    """Join two equal-size signatures sharing all but one interval.

    Returns ``None`` when the pair is not joinable (different sizes,
    fewer than ``p - 1`` common intervals, or the two odd intervals
    share an attribute).
    """
    if len(first) != len(second):
        return None
    set_a, set_b = set(first.intervals), set(second.intervals)
    only_a = set_a - set_b
    only_b = set_b - set_a
    if len(only_a) != 1 or len(only_b) != 1:
        return None
    (interval_a,) = only_a
    (interval_b,) = only_b
    if interval_a.attribute == interval_b.attribute:
        return None
    return Signature(first.intervals + (interval_b,))


def generate_candidates(
    signatures: Sequence[Signature],
    prune: bool = False,
) -> list[Signature]:
    """All (p+1)-signatures obtainable by joining pairs from
    ``signatures``, deduplicated, in deterministic order.

    With ``prune=True``, a candidate survives only if *all* of its
    p-subsignatures are in the generating set (classic Apriori
    downward-closure prune).
    """
    seen: set[Signature] = set()
    candidates: list[Signature] = []
    universe = set(signatures)
    for first, second in combinations(signatures, 2):
        joined = join_signatures(first, second)
        if joined is None or joined in seen:
            continue
        seen.add(joined)
        if prune and not _all_subsignatures_present(joined, universe):
            continue
        candidates.append(joined)
    return candidates


def _all_subsignatures_present(
    candidate: Signature, universe: set[Signature]
) -> bool:
    for interval in candidate:
        if candidate.without(interval) not in universe:
            return False
    return True


def singleton_signatures(intervals: Iterable[Interval]) -> list[Signature]:
    """``Cand_1`` — one 1-signature per relevant interval."""
    return [Signature((interval,)) for interval in intervals]


def maximal_signatures(signatures: Sequence[Signature]) -> list[Signature]:
    """Keep only signatures not properly contained in another one
    (the ``Filter maximal Cluster Cores`` step, Algorithm 1 line 11)."""
    result: list[Signature] = []
    by_size = sorted(dict.fromkeys(signatures), key=len, reverse=True)
    for sig in by_size:
        if not any(sig.is_proper_subset(kept) for kept in result):
            result.append(sig)
    return result
