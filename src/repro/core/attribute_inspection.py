"""Attribute inspection (Sections 4.2.3 / 5.6) with optional AI proving.

After the cluster memberships are fixed (EM + outlier removal for the
full pipeline; exclusive support sets for the Light variant), each
cluster's members are re-histogrammed over *all* attributes to find
relevant attributes the core-generation step missed.

Original P3C accepts every interval the chi-squared marking procedure
suggests.  P3C+ adds *AI proving*: a suggested interval must also pass
the support test of Eq. 1 — evaluated against the cluster's member set
(observed = members inside the interval, expected = members * width) —
before the attribute is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binning import build_histogram, freedman_diaconis_bins
from repro.core.intervals import find_relevant_intervals_for_histogram
from repro.core.stats import cohens_d_cc, poisson_deviation_significant
from repro.core.types import Interval


@dataclass(frozen=True)
class InspectionResult:
    """Relevant attributes (and their intervals) found for one cluster."""

    attributes: frozenset[int]
    intervals: tuple[Interval, ...]


def _interval_proven(
    members: np.ndarray,
    interval: Interval,
    alpha: float,
    theta_cc: float | None,
) -> bool:
    """AI proving: Eq. 1 applied to the cluster's member set."""
    column = members[:, interval.attribute]
    observed = int(interval.contains_column(column).sum())
    expected = len(members) * interval.width
    if not poisson_deviation_significant(observed, expected, alpha):
        return False
    if theta_cc is not None and cohens_d_cc(observed, expected) < theta_cc:
        return False
    return True


def inspect_attributes(
    data: np.ndarray,
    member_mask: np.ndarray,
    known_attributes: frozenset[int],
    chi2_alpha: float = 0.001,
    prove: bool = True,
    poisson_alpha: float = 0.01,
    theta_cc: float | None = 0.35,
    num_bins: int | None = None,
    max_bins: int | None = 200,
) -> InspectionResult:
    """Inspect one cluster's members for additional relevant attributes.

    Parameters
    ----------
    data:
        Full data matrix (n x d) in [0, 1].
    member_mask:
        Boolean mask of the cluster's members (outliers already removed).
    known_attributes:
        Attributes already known relevant (from the cluster core); these
        are always kept and skipped during re-inspection.
    prove:
        Enable P3C+ AI proving (Section 4.2.3); ``False`` reproduces
        original P3C behaviour.
    num_bins:
        Histogram resolution; defaults to Freedman-Diaconis on the
        member count.
    """
    members = data[member_mask]
    n_members = len(members)
    if n_members == 0:
        return InspectionResult(attributes=frozenset(known_attributes), intervals=())
    bins = num_bins if num_bins is not None else freedman_diaconis_bins(n_members)
    if max_bins is not None:
        bins = min(bins, max_bins)

    accepted_attrs: set[int] = set(known_attributes)
    accepted_intervals: list[Interval] = []
    for attribute in range(data.shape[1]):
        if attribute in known_attributes:
            continue
        histogram = build_histogram(data, attribute, bins, mask=member_mask)
        found = find_relevant_intervals_for_histogram(histogram, alpha=chi2_alpha)
        if not found.is_relevant:
            continue
        intervals = list(found.intervals)
        if prove:
            intervals = [
                iv
                for iv in intervals
                if _interval_proven(members, iv, poisson_alpha, theta_cc)
            ]
        if intervals:
            accepted_attrs.add(attribute)
            accepted_intervals.extend(intervals)
    return InspectionResult(
        attributes=frozenset(accepted_attrs),
        intervals=tuple(accepted_intervals),
    )
