"""The P3C+ pipeline (in-memory reference) and its Light variant.

This is the serial ground truth the MapReduce drivers are validated
against.  The pipeline follows Sections 3-4:

1. histogram building (Freedman-Diaconis bins),
2. relevant-interval detection (chi-squared marking),
3. Apriori cluster-core generation with Poisson + effect-size proving,
4. maximality filter + redundancy filter,
5. EM refinement in ``A_rel`` seeded from the cores,
6. outlier detection (naive or MVB),
7. attribute inspection (+ AI proving),
8. interval tightening.

:class:`P3CPlusLight` stops after step 4 and reports the cluster cores
directly (Section 6), avoiding the interval *blurring* the EM/outlier
steps introduce on large data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

import numpy as np

from repro.core.apriori import (
    generate_candidates,
    maximal_signatures,
    singleton_signatures,
)
from repro.core.attribute_inspection import inspect_attributes
from repro.core.binning import (
    build_all_histograms,
    freedman_diaconis_bins,
    sturges_bins,
)
from repro.core.em import fit_em, initialize_from_cores
from repro.core.intervals import find_relevant_intervals
from repro.core.outliers import (
    detect_outliers_mvb,
    detect_outliers_mve,
    detect_outliers_naive,
)
from repro.core.proving import SupportTester, count_supports
from repro.core.redundancy import filter_redundant
from repro.core.tightening import tighten_intervals
from repro.core.types import (
    ClusterCore,
    ClusteringResult,
    ProjectedCluster,
    Signature,
)


@dataclass(frozen=True)
class P3CPlusConfig:
    """All tuning knobs of the P3C / P3C+ family.

    The defaults are the paper's Section 7.3 settings.  The original
    P3C is this config with ``binning='sturges'``, ``theta_cc=None``,
    ``redundancy_filter=False``, ``outlier_method='naive'`` and
    ``ai_proving=False`` (see :mod:`repro.core.p3c`).
    """

    binning: Literal["freedman-diaconis", "sturges"] = "freedman-diaconis"
    chi2_alpha: float = 0.001
    poisson_alpha: float = 0.01
    theta_cc: float | None = 0.35
    redundancy_filter: bool = True
    outlier_method: Literal["naive", "mvb", "mve"] = "mvb"
    outlier_alpha: float = 0.001
    ai_proving: bool = True
    em_max_iter: int = 15
    apriori_prune: bool = True
    max_bins: int | None = 200

    def num_bins(self, n: int) -> int:
        if self.binning == "sturges":
            bins = sturges_bins(n)
        else:
            bins = freedman_diaconis_bins(n)
        if self.max_bins is not None:
            bins = min(bins, self.max_bins)
        return bins

    def with_overrides(self, **changes: object) -> "P3CPlusConfig":
        return replace(self, **changes)


def _validate_data(data: np.ndarray) -> np.ndarray:
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (n x d), got shape {data.shape}")
    if len(data) == 0:
        raise ValueError("data must contain at least one point")
    if np.nanmin(data) < 0.0 or np.nanmax(data) > 1.0:
        raise ValueError(
            "attributes must be normalised to [0, 1]; "
            "see repro.data.normalize_unit_range"
        )
    if np.isnan(data).any():
        raise ValueError("data must not contain NaN")
    return data


def generate_cluster_cores(
    data: np.ndarray,
    config: P3CPlusConfig,
) -> tuple[list[ClusterCore], dict[str, object]]:
    """Steps 1-4: histograms, intervals, Apriori proving, filters.

    Returns the cluster cores plus diagnostics used by the experiment
    harnesses (bin count, interval count, per-level proven counts,
    pre-/post-filter core counts for Figure 5).
    """
    n = len(data)
    num_bins = config.num_bins(n)
    histograms = build_all_histograms(data, num_bins)
    intervals = find_relevant_intervals(histograms, alpha=config.chi2_alpha)
    diagnostics: dict[str, object] = {
        "num_bins": num_bins,
        "num_relevant_intervals": len(intervals),
        "proven_per_level": [],
    }
    if not intervals:
        diagnostics.update(cores_before_redundancy=0, cores_after_redundancy=0)
        return [], diagnostics

    tester = SupportTester(n, alpha=config.poisson_alpha, theta_cc=config.theta_cc)
    all_supports: dict[Signature, int] = {}
    proven_all: list[Signature] = []

    level = singleton_signatures(intervals)
    while level:
        supports = count_supports(data, level)
        all_supports.update(supports)
        proven = tester.prove(
            level, supports, known=all_supports, proven_set=proven_all
        )
        diagnostics["proven_per_level"].append(len(proven))
        proven_sigs = [p.signature for p in proven]
        proven_all.extend(proven_sigs)
        if not proven_sigs:
            break
        level = generate_candidates(proven_sigs, prune=config.apriori_prune)
        level = [sig for sig in level if sig not in all_supports]

    maximal = maximal_signatures(proven_all)
    diagnostics["cores_before_redundancy"] = len(maximal)

    if config.redundancy_filter:
        maximal = filter_redundant(
            {sig: all_supports[sig] for sig in maximal}, n
        )
    diagnostics["cores_after_redundancy"] = len(maximal)

    cores = [
        ClusterCore(
            signature=sig,
            support=all_supports[sig],
            expected_support=sig.expected_support(n),
        )
        for sig in maximal
    ]
    cores.sort(key=lambda c: (-c.interestingness, c.signature.intervals))
    return cores, diagnostics


class P3CPlus:
    """The full P3C+ algorithm (Sections 4-5, serial reference)."""

    def __init__(self, config: P3CPlusConfig | None = None) -> None:
        self.config = config or P3CPlusConfig()

    def fit(self, data: np.ndarray) -> ClusteringResult:
        data = _validate_data(data)
        n, d = data.shape
        config = self.config

        cores, diagnostics = generate_cluster_cores(data, config)
        if not cores:
            return ClusteringResult(
                clusters=[],
                outliers=np.arange(n),
                n_points=n,
                n_dims=d,
                metadata=diagnostics,
            )

        # EM refinement in the relevant subspace.
        init = initialize_from_cores(data, cores)
        mixture = fit_em(data, init, max_iter=config.em_max_iter)
        sub = mixture.project(data)
        assignment = mixture.assign(sub)
        diagnostics["em_iterations"] = len(mixture.log_likelihood_history)

        # Outlier detection per cluster.
        outlier_mask = np.zeros(n, dtype=bool)
        for j in range(len(cores)):
            members = assignment == j
            if not members.any():
                continue
            members_sub = sub[members]
            if config.outlier_method == "mvb":
                flags, _ = detect_outliers_mvb(members_sub, config.outlier_alpha)
            elif config.outlier_method == "mve":
                flags, _ = detect_outliers_mve(members_sub, config.outlier_alpha)
            else:
                flags = detect_outliers_naive(
                    members_sub,
                    mixture.means[j],
                    mixture.covariances[j],
                    config.outlier_alpha,
                )
            idx = np.where(members)[0]
            outlier_mask[idx[flags]] = True

        # Attribute inspection + tightening.
        clusters: list[ProjectedCluster] = []
        for j, core in enumerate(cores):
            member_mask = (assignment == j) & ~outlier_mask
            if not member_mask.any():
                continue
            inspection = inspect_attributes(
                data,
                member_mask,
                known_attributes=core.attributes,
                chi2_alpha=config.chi2_alpha,
                prove=config.ai_proving,
                poisson_alpha=config.poisson_alpha,
                theta_cc=config.theta_cc,
                max_bins=config.max_bins,
            )
            signature = tighten_intervals(data, member_mask, inspection.attributes)
            clusters.append(
                ProjectedCluster(
                    members=np.where(member_mask)[0],
                    relevant_attributes=inspection.attributes,
                    signature=signature,
                    core=core,
                )
            )

        assigned = np.zeros(n, dtype=bool)
        for cluster in clusters:
            assigned[cluster.members] = True
        return ClusteringResult(
            clusters=clusters,
            outliers=np.where(~assigned)[0],
            n_points=n,
            n_dims=d,
            metadata=diagnostics,
        )


class P3CPlusLight:
    """P3C+ without EM and outlier detection (Section 6).

    Cluster cores are output directly; points supporting more than one
    core are excluded from the attribute-inspection histograms (the
    ``m'`` mapping) and, for unique assignment, shared points go to the
    most interesting covering core.
    """

    def __init__(self, config: P3CPlusConfig | None = None) -> None:
        self.config = config or P3CPlusConfig()

    def fit(self, data: np.ndarray) -> ClusteringResult:
        data = _validate_data(data)
        n, d = data.shape
        config = self.config

        cores, diagnostics = generate_cluster_cores(data, config)
        if not cores:
            return ClusteringResult(
                clusters=[],
                outliers=np.arange(n),
                n_points=n,
                n_dims=d,
                metadata=diagnostics,
            )

        masks = [core.signature.support_mask(data) for core in cores]
        cover_count = np.zeros(n, dtype=np.int64)
        for mask in masks:
            cover_count += mask

        # Unique assignment: cores are ordered by interestingness, so the
        # first covering core wins for shared points.
        assignment = np.full(n, -1, dtype=np.int64)
        for j in range(len(cores) - 1, -1, -1):
            assignment[masks[j]] = j

        clusters: list[ProjectedCluster] = []
        for j, core in enumerate(cores):
            exclusive_mask = masks[j] & (cover_count == 1)
            inspect_mask = exclusive_mask if exclusive_mask.any() else masks[j]
            inspection = inspect_attributes(
                data,
                inspect_mask,
                known_attributes=core.attributes,
                chi2_alpha=config.chi2_alpha,
                prove=config.ai_proving,
                poisson_alpha=config.poisson_alpha,
                theta_cc=config.theta_cc,
                max_bins=config.max_bins,
            )
            member_mask = assignment == j
            if not member_mask.any():
                continue
            signature = tighten_intervals(data, inspect_mask, inspection.attributes)
            clusters.append(
                ProjectedCluster(
                    members=np.where(member_mask)[0],
                    relevant_attributes=inspection.attributes,
                    signature=signature,
                    core=core,
                )
            )

        return ClusteringResult(
            clusters=clusters,
            outliers=np.where(assignment == -1)[0],
            n_points=n,
            n_dims=d,
            metadata=diagnostics,
        )
