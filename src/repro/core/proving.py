"""Candidate proving: the support test of Eq. 1 plus the P3C+ effect size.

A candidate (p+1)-signature ``S`` is *proven* when, for every interval
``I`` in ``S``, its support is significantly larger than the support
expected if the points of ``S \\ {I}`` were uniform on ``I``'s attribute:

    Supp_exp(S \\ {I}, I) = Supp(S \\ {I}) * width(I)        (Eq. 2)

P3C+ additionally requires the *effect size* (Cohen's d_cc with
sigma = Supp_exp, i.e. the relative deviation) to reach ``theta_cc``
(Section 4.1.2).  Setting ``theta_cc=None`` reproduces the original
P3C 'Poisson only' behaviour used as the baseline in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.stats import cohens_d_cc, poisson_deviation_significant
from repro.core.types import Signature


@dataclass(frozen=True)
class ProvenSignature:
    """A signature that passed the support test, with its support."""

    signature: Signature
    support: int

    @property
    def p(self) -> int:
        return len(self.signature)


@dataclass
class ProveStats:
    """Where one proving batch's candidates went.

    The paper's pruning pipeline has three distinct kill sites before
    the redundancy filter; attributing candidates to the *first* test
    they failed is what lets the observability layer answer "what did
    the statistical tests actually prune?".
    """

    candidates: int = 0
    proven: int = 0
    #: First failing check was the Poisson deviation test (Eq. 1).
    rejected_poisson: int = 0
    #: Passed Poisson but failed the effect-size threshold (P3C+ only).
    rejected_effect_size: int = 0
    #: Skipped because a (p-1)-parent was never proven (Definition 5).
    rejected_unproven_parent: int = 0

    def merge(self, other: "ProveStats") -> None:
        self.candidates += other.candidates
        self.proven += other.proven
        self.rejected_poisson += other.rejected_poisson
        self.rejected_effect_size += other.rejected_effect_size
        self.rejected_unproven_parent += other.rejected_unproven_parent

    def as_dict(self) -> dict[str, int]:
        return {
            "candidates": self.candidates,
            "proven": self.proven,
            "rejected_poisson": self.rejected_poisson,
            "rejected_effect_size": self.rejected_effect_size,
            "rejected_unproven_parent": self.rejected_unproven_parent,
        }


def count_supports(
    data: np.ndarray,
    signatures: Sequence[Signature],
) -> dict[Signature, int]:
    """Exact support of each signature by brute-force mask evaluation.

    The MapReduce path replaces this with the RSSC bitmap counter
    (:mod:`repro.mr.rssc`); both must agree exactly.
    """
    return {sig: sig.support(data) for sig in signatures}


class SupportTester:
    """Evaluates Eq. 1 (+ effect size) given known subsignature supports.

    Parameters
    ----------
    n:
        Database size (support of the empty signature).
    alpha:
        Poisson significance level (the 'threshold' swept in Figure 5).
    theta_cc:
        Effect-size threshold; ``None`` disables the effect-size test
        (original P3C behaviour).
    """

    def __init__(
        self,
        n: int,
        alpha: float = 0.01,
        theta_cc: float | None = 0.35,
    ) -> None:
        if n < 1:
            raise ValueError(f"database size must be >= 1, got {n}")
        self.n = n
        self.alpha = alpha
        self.theta_cc = theta_cc

    def parent_support(
        self,
        signature: Signature,
        known: Mapping[Signature, int],
    ) -> dict[Signature, int]:
        """Supports of all (p-1)-parents of ``signature`` from ``known``;
        the empty parent of a 1-signature has support ``n``."""
        parents: dict[Signature, int] = {}
        for interval in signature:
            parent = signature.without(interval)
            if len(parent) == 0:
                parents[parent] = self.n
            elif parent in known:
                parents[parent] = known[parent]
            else:
                raise KeyError(
                    f"support of parent {parent!r} unknown; prove / count "
                    "candidates level by level"
                )
        return parents

    def evaluate(
        self,
        signature: Signature,
        support: int,
        known: Mapping[Signature, int],
    ) -> str | None:
        """Eq. 1 verdict: ``None`` when proven, otherwise the name of
        the first failing test (``"poisson"`` / ``"effect_size"``)."""
        for interval in signature:
            parent = signature.without(interval)
            parent_supp = self.n if len(parent) == 0 else known[parent]
            expected = parent_supp * interval.width
            if not poisson_deviation_significant(support, expected, self.alpha):
                return "poisson"
            if self.theta_cc is not None:
                if cohens_d_cc(support, expected) < self.theta_cc:
                    return "effect_size"
        return None

    def passes(
        self,
        signature: Signature,
        support: int,
        known: Mapping[Signature, int],
    ) -> bool:
        """Eq. 1: every leave-one-out expectation must be significantly
        (and, for P3C+, relevantly) exceeded."""
        return self.evaluate(signature, support, known) is None

    def prove(
        self,
        candidates: Iterable[Signature],
        supports: Mapping[Signature, int],
        known: Mapping[Signature, int] | None = None,
        proven_set: Iterable[Signature] | None = None,
        stats: ProveStats | None = None,
    ) -> list[ProvenSignature]:
        """Prove a batch of candidates whose supports were counted.

        ``known`` supplies parent supports (proven signatures of the
        previous level); parents may also come from ``supports`` itself,
        which is what the multi-level collection relies on: all ancestors
        of a collected candidate are in the same counted batch.

        Definition 5 condition 1 quantifies over *all* q-subsignatures,
        so a candidate is only provable when every (p-1)-parent is itself
        proven — ``proven_set`` carries the signatures proven in earlier
        batches, and candidates proven inside this batch extend it.
        Candidates are processed in increasing signature size so parents
        are always resolved before children.

        ``stats``, when given, accumulates where each candidate went
        (proven, or the first test it failed).
        """
        merged: dict[Signature, int] = dict(known or {})
        merged.update(supports)
        accepted: set[Signature] = set(proven_set or ())
        proven: list[ProvenSignature] = []
        for sig in sorted(candidates, key=len):
            support = supports[sig]
            if stats is not None:
                stats.candidates += 1
            parents_proven = all(
                len(parent := sig.without(interval)) == 0 or parent in accepted
                for interval in sig
            )
            if not parents_proven:
                if stats is not None:
                    stats.rejected_unproven_parent += 1
                continue
            try:
                verdict = self.evaluate(sig, support, merged)
            except KeyError:
                verdict = "poisson"
            if verdict is None:
                proven.append(ProvenSignature(signature=sig, support=support))
                accepted.add(sig)
                if stats is not None:
                    stats.proven += 1
            elif stats is not None:
                if verdict == "poisson":
                    stats.rejected_poisson += 1
                else:
                    stats.rejected_effect_size += 1
        return proven
