"""Cluster-core redundancy filtering (Section 4.2.1, Eqs. 5-7).

A signature that merely describes the *intersection* of hidden clusters
(Figure 2's phantom ``S3``) passes the support test yet misleads the
final result.  Such signatures are exposed by their lower
``Supp / Supp_exp`` ratio: the filter removes every signature whose
intervals are covered by the union of strictly more interesting
signatures.

``Supp_exp`` here is the *global* expectation of Eq. 7
(``n * prod(widths)``), not the leave-one-out expectation of Eq. 2.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.types import Interval, Signature


def interestingness(
    signature: Signature,
    support: int,
    n: int,
) -> float:
    """``Supp(S) / Supp_exp(S)`` with the Eq. 7 global expectation."""
    expected = signature.expected_support(n)
    if expected <= 0:
        return float("inf") if support > 0 else 0.0
    return support / expected


def is_redundant(
    signature: Signature,
    support: int,
    others: Sequence[tuple[Signature, int]],
    n: int,
) -> bool:
    """Eq. 5: ``S`` is redundant iff ``S ⊆ ∪ {S_i : S_i >_r S}``.

    Signatures are sets of intervals, so the containment is interval-set
    containment: every interval of ``S`` must appear in (or be covered
    by an interval of) some strictly more interesting signature.
    """
    own = interestingness(signature, support, n)
    more_interesting: list[Signature] = [
        other
        for other, other_support in others
        if other != signature and interestingness(other, other_support, n) > own
    ]
    if not more_interesting:
        return False
    covering: set[Interval] = set()
    for other in more_interesting:
        covering.update(other.intervals)
    for interval in signature:
        if interval in covering:
            continue
        if any(candidate.covers(interval) for candidate in covering):
            continue
        return False
    return True


def filter_redundant(
    supports: Mapping[Signature, int],
    n: int,
) -> list[Signature]:
    """Remove redundant signatures from a support-annotated set.

    Redundancy of each signature is evaluated against the *full* input
    set (matching Eq. 5, which quantifies over ``Ŝ``), so the outcome is
    independent of removal order and the filter is idempotent.
    """
    items = list(supports.items())
    kept = [
        sig
        for sig, supp in items
        if not is_redundant(sig, supp, items, n)
    ]
    return sorted(kept, key=lambda s: (-len(s), s.intervals))
