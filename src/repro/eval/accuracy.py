"""Label accuracy for the colon-cancer experiment (Section 7.6).

The clustering is compared to binary class labels by mapping every
found cluster to its *majority* class and counting correctly labelled
points (the accuracy convention of the P3C literature; a class may be
recovered as several clusters without penalty beyond its impurity).
Unassigned points (outliers) count as errors.  A strict one-to-one
(Hungarian) mapping is available via ``mapping='one_to_one'``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.types import ClusteringResult


def label_accuracy(
    result: ClusteringResult,
    labels: np.ndarray,
    mapping: str = "majority",
) -> float:
    """Accuracy of a clustering against class labels.

    ``mapping='majority'`` assigns each cluster its majority class
    (many-to-one); ``mapping='one_to_one'`` uses the optimal Hungarian
    assignment of clusters to classes (splits are punished).
    """
    labels = np.asarray(labels)
    if len(labels) != result.n_points:
        raise ValueError(
            f"label vector length {len(labels)} != n_points {result.n_points}"
        )
    if result.num_clusters == 0:
        return 0.0
    predicted = result.labels()
    classes = np.unique(labels)
    contingency = np.zeros((result.num_clusters, len(classes)), dtype=np.int64)
    for cid in range(result.num_clusters):
        members = predicted == cid
        for col, cls in enumerate(classes):
            contingency[cid, col] = int((labels[members] == cls).sum())
    if mapping == "majority":
        correct = int(contingency.max(axis=1).sum())
    elif mapping == "one_to_one":
        rows, cols = linear_sum_assignment(contingency, maximize=True)
        correct = int(contingency[rows, cols].sum())
    else:
        raise ValueError(f"unknown mapping {mapping!r}")
    return correct / len(labels)
