"""CE — clustering error with a 1:1 cluster matching.

Like RNIA but the intersection credit ``D`` is restricted to an optimal
one-to-one matching between found and hidden clusters (computed with
the Hungarian algorithm), so cluster *splits* are punished hard: only
one fragment of a split cluster earns credit.  ``CE = (U - D) / U``;
we report the score form ``1 - CE = D / U``.
"""

from __future__ import annotations

from scipy.optimize import linear_sum_assignment

from repro.core.types import ProjectedCluster
from repro.eval.matching import pairwise_intersections, union_coverage


def ce_score(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> float:
    """``1 - CE``: optimally 1:1-matched coverage over union coverage."""
    if not hidden:
        raise ValueError("ground truth must contain at least one cluster")
    if not found:
        return 0.0
    matrix = pairwise_intersections(found, hidden)
    rows, cols = linear_sum_assignment(matrix, maximize=True)
    matched = int(matrix[rows, cols].sum())
    union = union_coverage(found, hidden)
    if union == 0:
        return 0.0
    return matched / union
