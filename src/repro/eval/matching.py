"""Micro-object machinery shared by the subspace quality measures.

A *micro-object* is an ``(object, attribute)`` pair; the micro-object
set of a projected cluster ``C = (X, Y)`` is ``X x Y``.  Because the
cluster is a Cartesian product, intersections factorise:

    |mu(C) ∩ mu(H)| = |X_C ∩ X_H| * |Y_C ∩ Y_H|

which keeps every measure O(k^2) in the cluster counts instead of
materialising per-pair sets of size n*d.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import ProjectedCluster


def micro_object_count(cluster: ProjectedCluster) -> int:
    """``|mu(C)| = |X| * |Y|``."""
    return cluster.size * len(cluster.relevant_attributes)


def micro_object_intersection(
    first: ProjectedCluster, second: ProjectedCluster
) -> int:
    """``|mu(C1) ∩ mu(C2)|`` via the product factorisation."""
    shared_attrs = len(first.relevant_attributes & second.relevant_attributes)
    if shared_attrs == 0:
        return 0
    shared_members = len(
        np.intersect1d(first.members, second.members, assume_unique=False)
    )
    return shared_members * shared_attrs


def pairwise_intersections(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> np.ndarray:
    """Matrix ``M[i, j] = |mu(found_i) ∩ mu(hidden_j)|``."""
    matrix = np.zeros((len(found), len(hidden)), dtype=np.int64)
    for i, c in enumerate(found):
        for j, h in enumerate(hidden):
            matrix[i, j] = micro_object_intersection(c, h)
    return matrix


def total_coverage(clusters: list[ProjectedCluster]) -> int:
    """Number of micro-objects covered by a clustering.

    Within one *projected* clustering the member sets are disjoint, so
    coverage is additive; if a result (e.g. an un-deduplicated Light
    variant) overlaps, the duplicated micro-objects are counted once.
    """
    plain = sum(micro_object_count(c) for c in clusters)
    overlap = 0
    for i in range(len(clusters)):
        for j in range(i + 1, len(clusters)):
            overlap += micro_object_intersection(clusters[i], clusters[j])
    if overlap == 0:
        return plain
    # Rare overlapping case: fall back to exact set semantics.
    covered: set[tuple[int, int]] = set()
    for cluster in clusters:
        covered.update(cluster.micro_objects())
    return len(covered)


def _has_internal_overlap(clusters: list[ProjectedCluster]) -> bool:
    for i in range(len(clusters)):
        for j in range(i + 1, len(clusters)):
            if micro_object_intersection(clusters[i], clusters[j]) > 0:
                return True
    return False


def union_coverage(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> int:
    """``|M_found ∪ M_hidden|`` — the U term of RNIA/CE.

    With disjoint clusters inside each clustering (the normal projected
    case) the cross term of inclusion-exclusion is exactly the sum of
    pairwise intersections; otherwise exact set semantics are used.
    """
    if _has_internal_overlap(found) or _has_internal_overlap(hidden):
        covered: set[tuple[int, int]] = set()
        for cluster in found + hidden:
            covered.update(cluster.micro_objects())
        return len(covered)
    cov_found = total_coverage(found)
    cov_hidden = total_coverage(hidden)
    cross = int(pairwise_intersections(found, hidden).sum())
    return cov_found + cov_hidden - cross
