"""Micro-object machinery shared by the subspace quality measures.

A *micro-object* is an ``(object, attribute)`` pair; the micro-object
set of a projected cluster ``C = (X, Y)`` is ``X x Y``.  Because the
cluster is a Cartesian product, intersections factorise:

    |mu(C) ∩ mu(H)| = |X_C ∩ X_H| * |Y_C ∩ Y_H|

which keeps every measure O(k^2) in the cluster counts instead of
materialising per-pair sets of size n*d.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import ProjectedCluster


def micro_object_count(cluster: ProjectedCluster) -> int:
    """``|mu(C)| = |X| * |Y|``."""
    return cluster.size * len(cluster.relevant_attributes)


def micro_object_intersection(
    first: ProjectedCluster, second: ProjectedCluster
) -> int:
    """``|mu(C1) ∩ mu(C2)|`` via the product factorisation."""
    shared_attrs = len(first.relevant_attributes & second.relevant_attributes)
    if shared_attrs == 0:
        return 0
    shared_members = len(
        np.intersect1d(first.members, second.members, assume_unique=False)
    )
    return shared_members * shared_attrs


def _is_internally_disjoint(clusters: list[ProjectedCluster]) -> bool:
    """True iff no object belongs to two clusters of the clustering."""
    total = sum(c.size for c in clusters)
    if total == 0:
        return True
    members = np.concatenate([c.members for c in clusters])
    return len(np.unique(members)) == total


def _label_vector(clusters: list[ProjectedCluster], size: int) -> np.ndarray:
    """Object -> cluster-index map (-1 = unassigned) of a disjoint
    clustering over the universe ``[0, size)``."""
    labels = np.full(size, -1, dtype=np.int64)
    for j, cluster in enumerate(clusters):
        labels[cluster.members] = j
    return labels


def pairwise_intersections(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> np.ndarray:
    """Matrix ``M[i, j] = |mu(found_i) ∩ mu(hidden_j)|``.

    When both clusterings are internally disjoint (the normal projected
    case) the member overlaps of *all* pairs come from one ``bincount``
    over the co-labelled objects and the attribute overlaps from one
    boolean matmul — O(n + k1*k2*d) instead of the per-pair
    ``intersect1d`` loop, which is what makes ``e4sc_score`` sub-second
    at n = 100k.  Overlapping clusterings keep the exact per-pair path.
    """
    if not found or not hidden:
        return np.zeros((len(found), len(hidden)), dtype=np.int64)
    if _is_internally_disjoint(found) and _is_internally_disjoint(hidden):
        k1, k2 = len(found), len(hidden)
        size = (
            int(
                max(
                    max((c.members.max() for c in found if c.size), default=-1),
                    max((h.members.max() for h in hidden if h.size), default=-1),
                )
            )
            + 1
        )
        found_labels = _label_vector(found, size)
        hidden_labels = _label_vector(hidden, size)
        both = (found_labels >= 0) & (hidden_labels >= 0)
        member_overlap = np.bincount(
            found_labels[both] * k2 + hidden_labels[both], minlength=k1 * k2
        ).reshape(k1, k2)
        num_attrs = (
            max(
                max((a for c in found for a in c.relevant_attributes), default=-1),
                max((a for h in hidden for a in h.relevant_attributes), default=-1),
            )
            + 1
        )
        found_attrs = np.zeros((k1, num_attrs), dtype=np.int64)
        for i, c in enumerate(found):
            found_attrs[i, list(c.relevant_attributes)] = 1
        hidden_attrs = np.zeros((k2, num_attrs), dtype=np.int64)
        for j, h in enumerate(hidden):
            hidden_attrs[j, list(h.relevant_attributes)] = 1
        return member_overlap * (found_attrs @ hidden_attrs.T)
    matrix = np.zeros((len(found), len(hidden)), dtype=np.int64)
    for i, c in enumerate(found):
        for j, h in enumerate(hidden):
            matrix[i, j] = micro_object_intersection(c, h)
    return matrix


def total_coverage(clusters: list[ProjectedCluster]) -> int:
    """Number of micro-objects covered by a clustering.

    Within one *projected* clustering the member sets are disjoint, so
    coverage is additive; if a result (e.g. an un-deduplicated Light
    variant) overlaps, the duplicated micro-objects are counted once.
    """
    plain = sum(micro_object_count(c) for c in clusters)
    overlap = 0
    for i in range(len(clusters)):
        for j in range(i + 1, len(clusters)):
            overlap += micro_object_intersection(clusters[i], clusters[j])
    if overlap == 0:
        return plain
    # Rare overlapping case: fall back to exact set semantics.
    covered: set[tuple[int, int]] = set()
    for cluster in clusters:
        covered.update(cluster.micro_objects())
    return len(covered)


def _has_internal_overlap(clusters: list[ProjectedCluster]) -> bool:
    for i in range(len(clusters)):
        for j in range(i + 1, len(clusters)):
            if micro_object_intersection(clusters[i], clusters[j]) > 0:
                return True
    return False


def union_coverage(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> int:
    """``|M_found ∪ M_hidden|`` — the U term of RNIA/CE.

    With disjoint clusters inside each clustering (the normal projected
    case) the cross term of inclusion-exclusion is exactly the sum of
    pairwise intersections; otherwise exact set semantics are used.
    """
    if _has_internal_overlap(found) or _has_internal_overlap(hidden):
        covered: set[tuple[int, int]] = set()
        for cluster in found + hidden:
            covered.update(cluster.micro_objects())
        return len(covered)
    cov_found = total_coverage(found)
    cov_hidden = total_coverage(hidden)
    cross = int(pairwise_intersections(found, hidden).sum())
    return cov_found + cov_hidden - cross
