"""E4SC — the paper's headline quality measure (Section 7.2).

Following Günnemann et al. (CIKM 2011), E4SC evaluates an F1 measure on
*micro-objects* (object-attribute pairs) in both mapping directions:

- per cluster pair, ``F1(C, H) = 2 |mu(C) ∩ mu(H)| / (|mu(C)| + |mu(H)|)``;
- recall side: every hidden cluster is mapped to its best found cluster,
  ``rec = mean_h max_c F1(c, h)`` — punishes missed clusters, merges and
  wrong subspaces;
- precision side: every found cluster is mapped to its best hidden
  cluster, ``prec = mean_c max_h F1(c, h)`` — punishes phantom clusters
  (e.g. the redundant signatures of Section 4.2.1);
- ``E4SC = 2 * prec * rec / (prec + rec)``.

The score is 1 exactly when the found clustering equals the ground
truth (same member sets and same relevant attributes), and degrades
with wrong object assignment, wrong subspaces, splits and merges.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import ProjectedCluster
from repro.eval.matching import micro_object_count, pairwise_intersections


def _pairwise_f1(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> np.ndarray:
    inter = pairwise_intersections(found, hidden).astype(float)
    size_found = np.array([micro_object_count(c) for c in found], dtype=float)
    size_hidden = np.array([micro_object_count(h) for h in hidden], dtype=float)
    denom = size_found[:, None] + size_hidden[None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2.0 * inter / denom, 0.0)
    return f1


def _subsample_clusters(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
    max_points: int,
    seed: int,
) -> tuple[list[ProjectedCluster], list[ProjectedCluster]]:
    """Restrict both clusterings to a seeded uniform object sample.

    Every cluster keeps only its members inside the sample; the F1
    ratios are estimated on the sampled universe.  Uniform sampling
    hits every cluster in proportion to its size, so the estimate
    concentrates around the exact score (cluster sizes are the only
    quantities entering the F1 numerator and denominator).
    """
    universe = np.unique(np.concatenate([c.members for c in found + hidden]))
    if len(universe) <= max_points:
        return found, hidden
    rng = np.random.default_rng(seed)
    sample = rng.choice(universe, size=max_points, replace=False)
    sample.sort()

    def restrict(clusters: list[ProjectedCluster]) -> list[ProjectedCluster]:
        return [
            ProjectedCluster(
                members=cluster.members[
                    np.isin(cluster.members, sample, assume_unique=False)
                ],
                relevant_attributes=cluster.relevant_attributes,
            )
            for cluster in clusters
        ]

    return restrict(found), restrict(hidden)


def e4sc_score(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
    max_points: int | None = None,
    seed: int = 0,
) -> float:
    """E4SC of a found clustering against the hidden ground truth.

    ``max_points`` caps the evaluated object universe with a seeded
    uniform sample (see :func:`_subsample_clusters`) — an estimator for
    huge n; leave ``None`` for the exact score (which is itself
    sub-second at n = 100k thanks to the vectorised intersection path).
    """
    if not hidden:
        raise ValueError("ground truth must contain at least one cluster")
    if not found:
        return 0.0
    if max_points is not None:
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        found, hidden = _subsample_clusters(found, hidden, max_points, seed)
        if all(c.size == 0 for c in found) or all(
            h.size == 0 for h in hidden
        ):
            return 0.0
    f1 = _pairwise_f1(found, hidden)
    recall = float(f1.max(axis=0).mean())
    precision = float(f1.max(axis=1).mean())
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
