"""E4SC — the paper's headline quality measure (Section 7.2).

Following Günnemann et al. (CIKM 2011), E4SC evaluates an F1 measure on
*micro-objects* (object-attribute pairs) in both mapping directions:

- per cluster pair, ``F1(C, H) = 2 |mu(C) ∩ mu(H)| / (|mu(C)| + |mu(H)|)``;
- recall side: every hidden cluster is mapped to its best found cluster,
  ``rec = mean_h max_c F1(c, h)`` — punishes missed clusters, merges and
  wrong subspaces;
- precision side: every found cluster is mapped to its best hidden
  cluster, ``prec = mean_c max_h F1(c, h)`` — punishes phantom clusters
  (e.g. the redundant signatures of Section 4.2.1);
- ``E4SC = 2 * prec * rec / (prec + rec)``.

The score is 1 exactly when the found clustering equals the ground
truth (same member sets and same relevant attributes), and degrades
with wrong object assignment, wrong subspaces, splits and merges.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import ProjectedCluster
from repro.eval.matching import micro_object_count, pairwise_intersections


def _pairwise_f1(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> np.ndarray:
    inter = pairwise_intersections(found, hidden).astype(float)
    size_found = np.array([micro_object_count(c) for c in found], dtype=float)
    size_hidden = np.array([micro_object_count(h) for h in hidden], dtype=float)
    denom = size_found[:, None] + size_hidden[None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2.0 * inter / denom, 0.0)
    return f1


def e4sc_score(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> float:
    """E4SC of a found clustering against the hidden ground truth."""
    if not hidden:
        raise ValueError("ground truth must contain at least one cluster")
    if not found:
        return 0.0
    f1 = _pairwise_f1(found, hidden)
    recall = float(f1.max(axis=0).mean())
    precision = float(f1.max(axis=1).mean())
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
