"""RNIA — relative non-intersecting area on micro-objects.

``RNIA = (U - I) / U`` where ``I`` is the number of micro-objects
covered by both clusterings and ``U`` the number covered by either.
We report the *score* form ``1 - RNIA = I / U`` so that, like every
other measure in :mod:`repro.eval`, larger is better and 1 is perfect.
"""

from __future__ import annotations

from repro.core.types import ProjectedCluster
from repro.eval.matching import pairwise_intersections, union_coverage


def rnia_score(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> float:
    """``1 - RNIA``: shared micro-object coverage over union coverage."""
    if not hidden:
        raise ValueError("ground truth must contain at least one cluster")
    if not found:
        return 0.0
    shared = int(pairwise_intersections(found, hidden).sum())
    union = union_coverage(found, hidden)
    if union == 0:
        return 0.0
    return shared / union
