"""External evaluation measures for subspace/projected clustering.

Reimplements the measures the paper uses (Section 7.2), following
Günnemann et al., "External evaluation measures for subspace
clustering", CIKM 2011:

- :func:`e4sc_score` — the headline measure of every quality figure;
- :func:`f1_score` — full-space F1 (reported as flawed: blind to wrong
  subspaces);
- :func:`rnia_score` — relative non-intersecting area on micro-objects;
- :func:`ce_score` — clustering error (1:1 matched RNIA);
- :func:`label_accuracy` — majority-label accuracy for the colon
  experiment (Section 7.6).

All scores are in [0, 1], larger is better, and equal 1 exactly for a
perfect result.
"""

from repro.eval.accuracy import label_accuracy
from repro.eval.ce import ce_score
from repro.eval.e4sc import e4sc_score
from repro.eval.f1 import f1_score
from repro.eval.matching import micro_object_intersection, pairwise_intersections
from repro.eval.rnia import rnia_score

__all__ = [
    "ce_score",
    "e4sc_score",
    "f1_score",
    "label_accuracy",
    "micro_object_intersection",
    "pairwise_intersections",
    "rnia_score",
]
