"""Full-space F1 measure on object sets.

The paper reports F1's known weakness (Section 7.2): it ignores the
subspace, so a cluster found with the right objects but entirely wrong
relevant attributes still scores perfectly.  We implement it both for
completeness and because the weakness itself is asserted by a test.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import ProjectedCluster


def _object_f1(first: ProjectedCluster, second: ProjectedCluster) -> float:
    inter = len(np.intersect1d(first.members, second.members))
    denom = first.size + second.size
    if denom == 0:
        return 0.0
    return 2.0 * inter / denom


def f1_score(
    found: list[ProjectedCluster],
    hidden: list[ProjectedCluster],
) -> float:
    """Symmetrised best-match F1 on member sets only."""
    if not hidden:
        raise ValueError("ground truth must contain at least one cluster")
    if not found:
        return 0.0
    matrix = np.array(
        [[_object_f1(c, h) for h in hidden] for c in found], dtype=float
    )
    recall = float(matrix.max(axis=0).mean())
    precision = float(matrix.max(axis=1).mean())
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
