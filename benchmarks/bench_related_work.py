"""Extension bench: P3C+ against the Section 2 related-work algorithms.

Not a paper exhibit — the EDBT paper only cites PROCLUS and DOC — but
it substantiates the paper's algorithm choice (Section 2's closing
argument: P3C's statistical model with automatic cluster-count /
subspace determination vs the parametric competitors, which receive
the *true* k and l here and still trail on subspace quality).
"""

from __future__ import annotations

from repro.baselines import DOC, DOCConfig, Proclus, ProclusConfig
from repro.core.p3c_plus import P3CPlus, P3CPlusLight
from repro.eval import e4sc_score
from repro.experiments.runner import format_table, make_dataset


def _sweep(sizes, dims, seed):
    rows = []
    for n in sizes:
        dataset = make_dataset(n, dims, 4, 0.10, seed)
        truth = dataset.ground_truth_clusters()
        avg_dims = max(
            2,
            round(
                sum(len(h.relevant_attributes) for h in dataset.hidden_clusters)
                / len(dataset.hidden_clusters)
            ),
        )
        algorithms = {
            "P3C+": P3CPlus(),
            "P3C+-Light": P3CPlusLight(),
            "PROCLUS (true k, l)": Proclus(
                ProclusConfig(num_clusters=4, avg_dimensions=avg_dims, seed=1)
            ),
            "DOC": DOC(DOCConfig(seed=1)),
        }
        scores = {
            name: e4sc_score(algorithm.fit(dataset.data).clusters, truth)
            for name, algorithm in algorithms.items()
        }
        rows.append((n, scores))
    return rows


def test_related_work_comparison(benchmark, bench_scale, save_exhibit):
    rows = benchmark.pedantic(
        lambda: _sweep(
            bench_scale.sizes[:2], bench_scale.dims, bench_scale.seed
        ),
        rounds=1,
        iterations=1,
    )
    names = list(rows[0][1])
    table = format_table(
        ["DB size"] + names,
        [[n] + [scores[name] for name in names] for n, scores in rows],
    )
    save_exhibit(
        "related_work",
        "Extension — P3C+ vs Section 2 related work (E4SC)\n" + table,
    )

    for _, scores in rows:
        best_p3c = max(scores["P3C+"], scores["P3C+-Light"])
        assert best_p3c >= scores["PROCLUS (true k, l)"]
        assert best_p3c >= scores["DOC"]
