"""Figure 3 bench: the RSSC bit-vector example."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure3


def test_figure3_rssc_binning(benchmark, save_exhibit):
    outcome = benchmark.pedantic(figure3.run, rounds=1, iterations=1)
    save_exhibit("figure3", figure3.main())

    # The paper's defining property: a signature without an interval on
    # the attribute keeps bit 1 in every cell.
    assert outcome["s2_bit_always_one"]
    # Boundaries include the interval bounds and the domain edges.
    assert outcome["boundaries"][0] == 0.0
    assert outcome["boundaries"][-1] == 1.0
    assert 0.4 in outcome["boundaries"]

    # And the binning actually drives exact support counting.
    rssc, signatures = figure3.build_example()
    rng = np.random.default_rng(0)
    data = rng.uniform(size=(500, 2))
    counts = rssc.count_supports(data)
    for sig in signatures:
        assert counts[sig] == sig.support(data)
