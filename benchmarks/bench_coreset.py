"""Coreset fast-path benchmark: approximate fit vs the exact chain.

Generates a paper-style synthetic workload, fits the full P3C+-MR
pipeline twice — once exactly, once through the ``--coreset`` fast path
(one-pass weighted summary + weighted chain + full-data assignment) —
and reports the wall-clock speedup together with the quality retained:
``e4sc_retention = E4SC(coreset) / E4SC(exact)`` against the generator's
ground truth.  Writes ``BENCH_coreset.json`` at the repository root.

The retention is also recorded as the ``mr.coreset_e4sc_retention``
gauge on the coreset run's observability scope (the driver itself
cannot compute it — it never runs the exact fit).

Usage::

    PYTHONPATH=src python benchmarks/bench_coreset.py            # full workload
    PYTHONPATH=src python benchmarks/bench_coreset.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_coreset.py --quick \\
        --min-speedup 3 --min-e4sc 0.9

``--min-speedup`` / ``--min-e4sc`` exit non-zero when the coreset path
is not at least that much faster / does not retain at least that
fraction of the exact score — the CI coreset-smoke gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data import GeneratorConfig, generate_synthetic  # noqa: E402
from repro.eval import e4sc_score  # noqa: E402
from repro.mr import P3CPlusMR, P3CPlusMRConfig  # noqa: E402
from repro.obs import Observability  # noqa: E402

SCHEMA = "repro.benchmarks/coreset/v1"
DEFAULT_OUT = REPO_ROOT / "BENCH_coreset.json"


def _fit(dataset, mr_config, obs=None):
    driver = P3CPlusMR(mr_config=mr_config, obs=obs)
    started = time.perf_counter()
    result = driver.fit(dataset.data)
    seconds = time.perf_counter() - started
    truth = dataset.ground_truth_clusters()
    score = e4sc_score(result.clusters, truth)
    return driver, result, seconds, score


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None, help="dataset points")
    parser.add_argument("--d", type=int, default=8, help="dimensionality")
    parser.add_argument(
        "--coreset-size", type=int, default=None, help="summary size m"
    )
    parser.add_argument(
        "--coreset-mode", default="uniform", choices=("uniform", "lightweight")
    )
    parser.add_argument("--splits", type=int, default=4)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke workload (n=100k instead of 250k)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the coreset fit is >= this multiple faster",
    )
    parser.add_argument(
        "--min-e4sc",
        type=float,
        default=None,
        help="fail unless e4sc_retention >= this fraction",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    # The coreset path amortises two extra full scans against the
    # per-iteration savings, so the crossover needs a real workload:
    # at n=20k the speedup is ~1.4x, at n=100k ~3.5x.
    n = args.n if args.n is not None else (100_000 if args.quick else 250_000)
    m = args.coreset_size or max(2_000, n // 25)

    dataset = generate_synthetic(
        GeneratorConfig(
            n=n,
            d=args.d,
            num_clusters=3,
            noise_fraction=0.10,
            max_cluster_dims=4,
            seed=args.seed,
        )
    )

    _, exact_result, exact_s, exact_score = _fit(
        dataset, P3CPlusMRConfig(num_splits=args.splits)
    )

    obs = Observability(enabled=True)
    coreset_driver, coreset_result, coreset_s, coreset_score = _fit(
        dataset,
        P3CPlusMRConfig(
            num_splits=args.splits,
            coreset_size=m,
            coreset_mode=args.coreset_mode,
        ),
        obs=obs,
    )

    speedup = exact_s / coreset_s if coreset_s > 0 else float("inf")
    retention = coreset_score / exact_score if exact_score > 0 else 0.0
    coreset_driver.obs.gauge("mr.coreset_e4sc_retention", retention)
    info = coreset_result.metadata["coreset"]
    build_series = coreset_driver.obs.metrics.series_values("mr.coreset_build_s")
    build_s = build_series[-1] if build_series else 0.0

    rows = [
        {
            "bench": "exact_fit",
            "n": n,
            "seconds": round(exact_s, 4),
            "e4sc": round(exact_score, 4),
            "clusters": exact_result.num_clusters,
        },
        {
            "bench": "coreset_fit",
            "n": n,
            "seconds": round(coreset_s, 4),
            "e4sc": round(coreset_score, 4),
            "clusters": coreset_result.num_clusters,
        },
        {
            "bench": "coreset_build",
            "n": n,
            "seconds": round(build_s, 4),
            "e4sc": None,
            "clusters": None,
        },
    ]
    report = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "workload": {
            "n": n,
            "d": args.d,
            "splits": args.splits,
            "coreset_size": m,
            "coreset_mode": args.coreset_mode,
            "realised_size": info["size"],
            "effective_size": round(info["effective_size"], 1),
        },
        "coreset_speedup": round(speedup, 2),
        "e4sc_retention": round(retention, 4),
        "e4sc_exact": round(exact_score, 4),
        "e4sc_coreset": round(coreset_score, 4),
        "rows": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(r["bench"]) for r in rows)
    print(f"{'bench':<{width}} {'n':>9} {'seconds':>9} {'e4sc':>7}")
    for r in rows:
        e4sc = f"{r['e4sc']:.4f}" if r["e4sc"] is not None else "-"
        print(f"{r['bench']:<{width}} {r['n']:>9} {r['seconds']:>9.3f} {e4sc:>7}")
    print(
        f"\ncoreset speedup: {speedup:.1f}x "
        f"(m={info['size']}, ess={info['effective_size']:.0f}, "
        f"mode={args.coreset_mode})"
    )
    print(f"e4sc retention: {retention:.4f} (exact {exact_score:.4f})")
    print(f"[saved to {args.out}]")

    failed = False
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: coreset speedup {speedup:.1f}x is below the "
            f"required {args.min_speedup:g}x",
            file=sys.stderr,
        )
        failed = True
    if args.min_e4sc is not None and retention < args.min_e4sc:
        print(
            f"FAIL: e4sc retention {retention:.4f} is below the "
            f"required {args.min_e4sc:g}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
