"""Extension bench: parameter stability (paper Sections 2 / 7.3).

The paper's stated reason for choosing P3C is its "simple and stable
parameter setting": one confidence level for interval detection, one
for proving, one effect-size threshold — and quality should be flat
over broad parameter ranges (the theta_cc sweep of Section 7.3 already
shows a wide plateau).  This bench sweeps all three parameters around
their defaults and asserts the plateau.
"""

from __future__ import annotations

import numpy as np

from repro.core.p3c_plus import P3CPlusConfig, P3CPlusLight
from repro.eval import e4sc_score
from repro.experiments.runner import format_table, make_dataset


def _score(dataset, truth, **overrides) -> float:
    config = P3CPlusConfig().with_overrides(**overrides)
    result = P3CPlusLight(config).fit(dataset.data)
    return e4sc_score(result.clusters, truth)


def test_parameter_stability(benchmark, bench_scale, save_exhibit):
    dataset = make_dataset(
        bench_scale.sizes[1], bench_scale.dims, 4, 0.10, bench_scale.seed
    )
    truth = dataset.ground_truth_clusters()

    sweeps = {
        "chi2_alpha": (1e-4, 1e-3, 1e-2),
        "poisson_alpha": (1e-4, 1e-2, 1e-1),
        "theta_cc": (0.15, 0.35, 0.5),
    }

    def run_sweeps():
        scores: dict[str, list[float]] = {}
        for parameter, values in sweeps.items():
            scores[parameter] = [
                _score(dataset, truth, **{parameter: value})
                for value in values
            ]
        return scores

    scores = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    rows = []
    for parameter, values in sweeps.items():
        rows.append(
            [parameter]
            + [f"{v:g} -> {s:.3f}" for v, s in zip(values, scores[parameter])]
        )
    table = format_table(
        ["parameter", "low", "default", "high"], rows
    )
    save_exhibit(
        "parameter_stability",
        "Extension — parameter stability (E4SC across parameter "
        "ranges; paper claims a flat plateau)\n" + table,
    )

    # The plateau: within each sweep, quality varies by < 0.25 E4SC and
    # never collapses.
    for parameter, values in sweeps.items():
        spread = max(scores[parameter]) - min(scores[parameter])
        assert spread < 0.25, f"{parameter} unstable: {scores[parameter]}"
        assert min(scores[parameter]) > 0.4
    # The default configuration is within a whisker of each sweep's best.
    default = _score(dataset, truth)
    best = max(max(v) for v in scores.values())
    assert default >= best - 0.25
    assert float(np.mean([s for v in scores.values() for s in v])) > 0.5
