"""Section 7.3 bench: the theta_cc selection sweep."""

from __future__ import annotations

from repro.experiments import theta


def test_theta_selection(benchmark, save_exhibit):
    outcome = benchmark.pedantic(
        lambda: theta.run(
            sizes=(1_000,),
            dims=15,
            num_clusters=(3, 5),
            noise_levels=(0.05, 0.20),
            thetas=(0.05, 0.15, 0.25, 0.35, 0.45),
        ),
        rounds=1,
        iterations=1,
    )
    rows = "\n".join(
        f"  n={n} k={k} noise={noise:.0%}: optimum theta_cc = {opt:.2f}"
        for (n, k, noise), opt in sorted(outcome.per_dataset_optimum.items())
    )
    save_exhibit(
        "theta",
        "Section 7.3 — theta_cc selection\n"
        + rows
        + f"\nselected (median of optima): {outcome.selected_theta:.2f} "
        "(paper: 0.35)",
    )

    # The selected theta lies inside the swept range and in the paper's
    # broad plateau (quality is flat over much of [0.05, 0.5]).
    assert 0.05 <= outcome.selected_theta <= 0.45
    # All per-data-set optima achieved a sane score.
    for scores in outcome.per_dataset_scores.values():
        assert max(scores.values()) > 0.5
