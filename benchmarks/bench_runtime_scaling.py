"""Runtime-scaling bench: thread/process executors vs serial.

Times the two dominant P3C+-MR job shapes — the histogram job
(Section 5.1) and the RSSC support-counting job (Section 5.3) — under
every executor backend, asserts bit-identical outputs, and emits a JSON
record (``benchmarks/output/runtime_scaling.json``) for the bench
trajectory: per-executor wall times and speedups vs serial.

Alongside it, a standard observability run report
(``runtime_scaling.run.json``, schema ``repro.obs/run-report/v1``)
carries the per-job task percentiles, skew ratios and the per-executor
timing gauges in the same stable fields every driver emits.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.intervals import find_relevant_intervals
from repro.core.types import Signature
from repro.data import GeneratorConfig, generate_synthetic
from repro.mapreduce import JobChain, MapReduceRuntime
from repro.mapreduce.types import split_records
from repro.mr.histogram import run_histogram_job
from repro.mr.support import run_support_job
from repro.obs import Observability, build_run_report, validate_run_report

from conftest import OUTPUT_DIR

EXECUTORS = ("serial", "thread", "process")
NUM_SPLITS = 8
WORKERS = 4
NUM_BINS = 10
MAX_CANDIDATES = 400


def _dataset(n: int = 12_000, d: int = 16) -> np.ndarray:
    return generate_synthetic(
        GeneratorConfig(
            n=n, d=d, num_clusters=3, noise_fraction=0.1,
            max_cluster_dims=8, seed=7,
        )
    ).data


def _candidates(chain: JobChain, splits) -> list[Signature]:
    """Realistic 2-signature candidate batch from relevant intervals."""
    histograms = run_histogram_job(chain, splits, NUM_BINS)
    intervals = find_relevant_intervals(histograms, alpha=0.001)
    candidates = []
    for i, first in enumerate(intervals):
        for second in intervals[i + 1:]:
            if first.attribute != second.attribute:
                candidates.append(Signature([first, second]))
            if len(candidates) >= MAX_CANDIDATES:
                return candidates
    return candidates


def test_runtime_scaling(save_exhibit):
    data = _dataset()
    timings: dict[str, dict[str, float]] = {"histogram": {}, "support": {}}
    outputs: dict[str, tuple] = {}
    candidates: list[Signature] | None = None
    obs_by_executor: dict[str, Observability] = {}
    chains: dict[str, JobChain] = {}

    for name in EXECUTORS:
        obs = obs_by_executor[name] = Observability()
        runtime = MapReduceRuntime(executor=name, max_workers=WORKERS, obs=obs)
        chain = chains[name] = JobChain(runtime)
        splits = split_records(data, NUM_SPLITS)

        started = time.perf_counter()
        histograms = run_histogram_job(chain, splits, NUM_BINS)
        timings["histogram"][name] = time.perf_counter() - started

        if candidates is None:
            candidates = _candidates(JobChain(MapReduceRuntime()), splits)
        started = time.perf_counter()
        supports = run_support_job(chain, splits, candidates)
        timings["support"][name] = time.perf_counter() - started

        outputs[name] = (
            tuple(tuple(h.counts) for h in histograms),
            tuple(sorted(supports.values())),
        )

    # Parity guard: every backend computed the same histograms/supports.
    assert outputs["thread"] == outputs["serial"]
    assert outputs["process"] == outputs["serial"]

    record = {
        "n": int(len(data)),
        "d": int(data.shape[1]),
        "num_splits": NUM_SPLITS,
        "workers": WORKERS,
        "num_candidates": len(candidates),
        "seconds": timings,
        "speedup_vs_serial": {
            job: {
                name: round(times["serial"] / times[name], 3)
                for name in EXECUTORS
            }
            for job, times in timings.items()
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "runtime_scaling.json"
    path.write_text(json.dumps(record, indent=2) + "\n")

    # Standard run report (serial chain as the comparable baseline, the
    # per-executor timings as metrics gauges) for the perf trajectory.
    obs = obs_by_executor["serial"]
    for job, times in timings.items():
        for name, seconds in times.items():
            obs.gauge(f"bench.{job}_seconds.{name}", seconds)
    report = build_run_report(
        "bench-runtime-scaling",
        obs=obs,
        chain=chains["serial"],
        dataset={"n": int(len(data)), "d": int(data.shape[1])},
        extra={"bench": {"workers": WORKERS, "num_splits": NUM_SPLITS}},
    )
    assert validate_run_report(report) == []
    report_path = OUTPUT_DIR / "runtime_scaling.run.json"
    report_path.write_text(json.dumps(report, indent=2, default=repr) + "\n")

    lines = [
        "Runtime scaling — executor wall times (s), "
        f"{len(data)} x {data.shape[1]}, {NUM_SPLITS} splits, "
        f"{WORKERS} workers",
    ]
    for job, times in timings.items():
        row = "  ".join(f"{name}={times[name]:.3f}" for name in EXECUTORS)
        lines.append(f"{job:<12} {row}")
    lines.append(f"[json saved to {path}]")
    lines.append(f"[run report saved to {report_path}]")
    save_exhibit("runtime_scaling", "\n".join(lines))
