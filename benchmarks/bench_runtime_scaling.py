"""Runtime-scaling bench: thread/process executors vs serial.

Times the two dominant P3C+-MR job shapes — the histogram job
(Section 5.1) and the RSSC support-counting job (Section 5.3) — under
every executor backend, asserts bit-identical outputs, and emits a JSON
record (``benchmarks/output/runtime_scaling.json``) for the bench
trajectory: per-executor wall times and speedups vs serial.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.intervals import find_relevant_intervals
from repro.core.types import Signature
from repro.data import GeneratorConfig, generate_synthetic
from repro.mapreduce import JobChain, MapReduceRuntime
from repro.mapreduce.types import split_records
from repro.mr.histogram import run_histogram_job
from repro.mr.support import run_support_job

from conftest import OUTPUT_DIR

EXECUTORS = ("serial", "thread", "process")
NUM_SPLITS = 8
WORKERS = 4
NUM_BINS = 10
MAX_CANDIDATES = 400


def _dataset(n: int = 12_000, d: int = 16) -> np.ndarray:
    return generate_synthetic(
        GeneratorConfig(
            n=n, d=d, num_clusters=3, noise_fraction=0.1,
            max_cluster_dims=8, seed=7,
        )
    ).data


def _candidates(chain: JobChain, splits) -> list[Signature]:
    """Realistic 2-signature candidate batch from relevant intervals."""
    histograms = run_histogram_job(chain, splits, NUM_BINS)
    intervals = find_relevant_intervals(histograms, alpha=0.001)
    candidates = []
    for i, first in enumerate(intervals):
        for second in intervals[i + 1:]:
            if first.attribute != second.attribute:
                candidates.append(Signature([first, second]))
            if len(candidates) >= MAX_CANDIDATES:
                return candidates
    return candidates


def test_runtime_scaling(save_exhibit):
    data = _dataset()
    timings: dict[str, dict[str, float]] = {"histogram": {}, "support": {}}
    outputs: dict[str, tuple] = {}
    candidates: list[Signature] | None = None

    for name in EXECUTORS:
        runtime = MapReduceRuntime(executor=name, max_workers=WORKERS)
        chain = JobChain(runtime)
        splits = split_records(data, NUM_SPLITS)

        started = time.perf_counter()
        histograms = run_histogram_job(chain, splits, NUM_BINS)
        timings["histogram"][name] = time.perf_counter() - started

        if candidates is None:
            candidates = _candidates(JobChain(MapReduceRuntime()), splits)
        started = time.perf_counter()
        supports = run_support_job(chain, splits, candidates)
        timings["support"][name] = time.perf_counter() - started

        outputs[name] = (
            tuple(tuple(h.counts) for h in histograms),
            tuple(sorted(supports.values())),
        )

    # Parity guard: every backend computed the same histograms/supports.
    assert outputs["thread"] == outputs["serial"]
    assert outputs["process"] == outputs["serial"]

    record = {
        "n": int(len(data)),
        "d": int(data.shape[1]),
        "num_splits": NUM_SPLITS,
        "workers": WORKERS,
        "num_candidates": len(candidates),
        "seconds": timings,
        "speedup_vs_serial": {
            job: {
                name: round(times["serial"] / times[name], 3)
                for name in EXECUTORS
            }
            for job, times in timings.items()
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "runtime_scaling.json"
    path.write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        "Runtime scaling — executor wall times (s), "
        f"{len(data)} x {data.shape[1]}, {NUM_SPLITS} splits, "
        f"{WORKERS} workers",
    ]
    for job, times in timings.items():
        row = "  ".join(f"{name}={times[name]:.3f}" for name in EXECUTORS)
        lines.append(f"{job:<12} {row}")
    lines.append(f"[json saved to {path}]")
    save_exhibit("runtime_scaling", "\n".join(lines))
