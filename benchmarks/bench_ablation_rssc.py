"""Ablation: RSSC bitmap counting vs naive per-signature counting
(Section 5.3).

The paper introduces the RSSC because a mapper that queries every
candidate signature for containment of every record is too slow once
candidates number in the 10^5 range.  This bench compares, on the same
candidate set and with the same record-at-a-time mapper discipline,

- the naive counter: one ``contains_point`` check per (record,
  candidate) pair, and
- the RSSC: one binary search per relevant attribute + bitwise ANDs,

asserts exact agreement (also against the vectorised reference) and
reports the speedup, which grows with the candidate count.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.proving import count_supports
from repro.core.types import Interval, Signature
from repro.experiments.runner import format_table, make_dataset
from repro.mr.rssc import RSSC


def _candidate_set(rng, num_sigs: int, d: int) -> list[Signature]:
    signatures = []
    for _ in range(num_sigs):
        attrs = rng.choice(d, size=int(rng.integers(2, 5)), replace=False)
        intervals = []
        for attribute in attrs:
            lo = float(rng.uniform(0, 0.8))
            intervals.append(
                Interval(int(attribute), lo, lo + float(rng.uniform(0.05, 0.2)))
            )
        signatures.append(Signature(intervals))
    return signatures


def _naive_record_at_a_time(
    data: np.ndarray, candidates: list[Signature]
) -> dict[Signature, int]:
    """The pre-RSSC mapper: query every signature for every record."""
    counts = dict.fromkeys(candidates, 0)
    for point in data:
        for signature in candidates:
            if signature.contains_point(point):
                counts[signature] += 1
    return counts


def _rssc_record_at_a_time(
    data: np.ndarray, rssc: RSSC
) -> dict[Signature, int]:
    counts = np.zeros(rssc.num_signatures, dtype=np.int64)
    for point in data:
        rssc.add_point(point, counts)
    return {sig: int(c) for sig, c in zip(rssc.signatures, counts)}


def test_rssc_vs_naive_counting(benchmark, bench_scale, save_exhibit):
    rng = np.random.default_rng(0)
    dataset = make_dataset(1_000, bench_scale.dims, 5, 0.1, bench_scale.seed)
    rows = []
    speedups = {}
    for num_sigs in (50, 200, 800):
        candidates = _candidate_set(rng, num_sigs, bench_scale.dims)
        rssc = RSSC(candidates)

        started = time.perf_counter()
        naive_counts = _naive_record_at_a_time(dataset.data, candidates)
        naive_time = time.perf_counter() - started

        started = time.perf_counter()
        rssc_counts = _rssc_record_at_a_time(dataset.data, rssc)
        rssc_time = time.perf_counter() - started

        assert rssc_counts == naive_counts
        assert rssc_counts == count_supports(dataset.data, candidates)
        speedups[num_sigs] = naive_time / rssc_time
        rows.append(
            [num_sigs, naive_time, rssc_time, naive_time / rssc_time]
        )

    largest = _candidate_set(rng, 800, bench_scale.dims)
    rssc = RSSC(largest)
    benchmark.pedantic(
        lambda: _rssc_record_at_a_time(dataset.data, rssc),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["#candidates", "naive (s)", "RSSC (s)", "speedup"], rows
    )
    save_exhibit(
        "ablation_rssc",
        "Ablation — RSSC vs naive support counting (Section 5.3)\n" + table,
    )

    # The RSSC must win at the largest candidate count, and its
    # advantage must grow with the candidate count (the paper's point).
    assert speedups[800] > 1.0
    assert speedups[800] > speedups[50]
