"""Section 6 bench: the blurring effect, made observable by injection.

Figure 6's Light-beats-MVB ordering needs cluster-scale n (blurring
points occur naturally there).  This bench injects the paper's x-/x+
points explicitly and asserts the mechanism itself: naive OD blurs
badly (masking), MVB resists, Light stays tight.
"""

from __future__ import annotations

from repro.experiments import blurring


def test_blurring_effect(benchmark, save_exhibit):
    rows = benchmark.pedantic(
        lambda: blurring.run(n=3_000, dims=15, num_clusters=3),
        rounds=1,
        iterations=1,
    )
    save_exhibit("blurring", blurring.render(rows))

    series = {
        (row.algorithm, row.blurred_points): row.width_ratio for row in rows
    }
    counts = sorted({row.blurred_points for row in rows})
    heaviest = counts[-1]

    # Naive blurs progressively as adversarial points are injected.
    assert series[("MR (Naive)", heaviest)] > series[("MR (Naive)", 0)]
    # Under heavy injection: Light tighter than MVB tighter than naive.
    assert (
        series[("MR (Light)", heaviest)]
        <= series[("MR (MVB)", heaviest)]
        <= series[("MR (Naive)", heaviest)]
    )
    # Light stays essentially tight throughout.
    assert series[("MR (Light)", heaviest)] < 1.2
