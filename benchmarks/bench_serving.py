"""Serving-path benchmark: batched scoring vs the scalar oracle.

Fits a quick P3C+-MR model on synthetic data, auto-registers it, loads
it back through the :class:`~repro.serving.ModelRegistry` (so the
measured model went through the exact artifact a server would load),
then measures the batched ``FittedModel.assign`` path — sustained
points/sec and per-batch latency percentiles — against the deliberately
naive per-row :func:`~repro.serving.reference_assign` oracle.  Writes
``BENCH_serving.json`` at the repository root.

The speedup is only reported after a parity guard: the batched path
must score the oracle subset element-wise bitwise identically
(ids, outlier mask and scores), the same property the Hypothesis suite
tests on random models.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full workload
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --quick \\
        --min-assign-speedup 10

``--min-assign-speedup`` exits non-zero when the batched scorer is not
at least that multiple faster than the scalar reference — the CI
serve-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data import GeneratorConfig, generate_synthetic  # noqa: E402
from repro.mr import P3CPlusMR, P3CPlusMRConfig  # noqa: E402
from repro.serving import ModelRegistry, reference_assign  # noqa: E402

SCHEMA = "repro.benchmarks/serving/v1"
DEFAULT_OUT = REPO_ROOT / "BENCH_serving.json"


def _row(bench: str, n: int, seconds: float) -> dict:
    return {
        "bench": bench,
        "n": n,
        "seconds": round(seconds, 6),
        "points_per_sec": round(n / seconds, 1) if seconds > 0 else None,
    }


def _fit_and_load(n: int, d: int, seed: int):
    """Fit the full MR pipeline and reload the registered model."""
    dataset = generate_synthetic(
        GeneratorConfig(
            n=n,
            d=d,
            num_clusters=3,
            noise_fraction=0.10,
            max_cluster_dims=4,
            seed=seed,
        )
    )
    with tempfile.TemporaryDirectory() as root:
        driver = P3CPlusMR(
            mr_config=P3CPlusMRConfig(num_splits=4, model_registry=root)
        )
        started = time.perf_counter()
        driver.fit(dataset.data)
        fit_s = time.perf_counter() - started
        if driver.model_id is None:
            raise AssertionError(
                "fit registered no model; enlarge the workload"
            )
        registry = ModelRegistry(root)
        started = time.perf_counter()
        model = registry.load("latest")
        load_s = time.perf_counter() - started
    return model, driver.model_id, fit_s, load_s


def _assert_parity(batch, reference) -> None:
    if not (
        np.array_equal(batch.cluster_ids, reference.cluster_ids)
        and np.array_equal(batch.outlier_mask, reference.outlier_mask)
        and np.array_equal(batch.scores, reference.scores, equal_nan=True)
    ):
        raise AssertionError(
            "batched assign diverged from the scalar reference scorer"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None, help="fit points")
    parser.add_argument("--d", type=int, default=8, help="dimensionality")
    parser.add_argument(
        "--batch-size", type=int, default=None, help="serving batch rows"
    )
    parser.add_argument(
        "--batches", type=int, default=None, help="timed batches"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke workload (smaller fit and probe)",
    )
    parser.add_argument(
        "--min-assign-speedup",
        type=float,
        default=None,
        help="fail unless batched assign >= this multiple of the "
        "scalar reference throughput",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (4_000 if args.quick else 20_000)
    batch_size = args.batch_size or (256 if args.quick else 1_024)
    num_batches = args.batches or (40 if args.quick else 100)
    ref_n = min(300 if args.quick else 1_000, batch_size * num_batches)

    model, model_id, fit_s, load_s = _fit_and_load(n, args.d, args.seed)

    rng = np.random.default_rng(args.seed)
    probe = rng.uniform(-0.05, 1.05, size=(num_batches * batch_size, args.d))
    model.assign(probe[:batch_size])  # warm the per-component caches

    latencies = np.empty(num_batches)
    for i in range(num_batches):
        batch = probe[i * batch_size : (i + 1) * batch_size]
        started = time.perf_counter()
        model.assign(batch)
        latencies[i] = time.perf_counter() - started
    batch_s = float(latencies.sum())
    throughput = len(probe) / batch_s
    p50_ms, p95_ms = (
        float(v) * 1000.0 for v in np.percentile(latencies, [50, 95])
    )

    subset = probe[:ref_n]
    started = time.perf_counter()
    reference = reference_assign(model, subset)
    ref_s = time.perf_counter() - started
    _assert_parity(model.assign(subset), reference)
    ref_pps = ref_n / ref_s
    speedup = throughput / ref_pps

    rows = [
        _row("fit_register", n, fit_s),
        _row("registry_load", 1, load_s),
        _row("assign_batched", len(probe), batch_s),
        _row("assign_reference", ref_n, ref_s),
    ]
    report = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "workload": {
            "n": n,
            "d": args.d,
            "batch_size": batch_size,
            "batches": num_batches,
            "reference_n": ref_n,
        },
        "model_id": model_id,
        "num_clusters": model.num_clusters,
        "assign_speedup": round(speedup, 2),
        "throughput_points_per_s": round(throughput, 1),
        "batch_p50_ms": round(p50_ms, 4),
        "batch_p95_ms": round(p95_ms, 4),
        "rows": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(r["bench"]) for r in rows)
    print(f"{'bench':<{width}} {'n':>9} {'seconds':>10} {'points/s':>14}")
    for r in rows:
        pps = f"{r['points_per_sec']:,.0f}" if r["points_per_sec"] else "-"
        print(
            f"{r['bench']:<{width}} {r['n']:>9} "
            f"{r['seconds']:>10.4f} {pps:>14}"
        )
    print(f"\nmodel: {model_id} ({model.num_clusters} clusters)")
    print(
        f"batched assign: {throughput:,.0f} points/s "
        f"(p50 {p50_ms:.2f} ms, p95 {p95_ms:.2f} ms per batch)"
    )
    print(f"batched assign speedup over scalar reference: {speedup:.1f}x")
    print(f"[saved to {args.out}]")

    if args.min_assign_speedup is not None and speedup < args.min_assign_speedup:
        print(
            f"FAIL: assign speedup {speedup:.1f}x is below the "
            f"required {args.min_assign_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
