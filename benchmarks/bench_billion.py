"""Section 7.5.2 bench: the billion-point MR-Light vs BoW-Light run."""

from __future__ import annotations

import json

from repro.experiments import billion
from repro.obs import validate_run_report

from conftest import OUTPUT_DIR


def test_billion_point_projection(benchmark, save_exhibit):
    outcome = benchmark.pedantic(
        lambda: billion.run(scaled_n=4_000, dims=30),
        rounds=1,
        iterations=1,
    )
    save_exhibit("billion", billion.render(outcome, scaled_n=4_000))

    # Standard run report of the measured MR-Light run, alongside the
    # rendered exhibit, so the perf trajectory has stable fields.
    assert outcome.run_report is not None
    assert validate_run_report(outcome.run_report) == []
    OUTPUT_DIR.mkdir(exist_ok=True)
    report_path = OUTPUT_DIR / "billion.run.json"
    report_path.write_text(
        json.dumps(outcome.run_report, indent=2, default=repr) + "\n"
    )

    # Headline ordering: MR-Light beats BoW-Light at 10^9 points.
    assert outcome.projected_mr_light_s < outcome.projected_bow_light_s
    # The factor is in the paper's ballpark (~2.2x); accept 1.2-5x.
    assert 1.2 < outcome.projected_ratio < 5.0
    # The projected MR-Light total lands in the paper's order of
    # magnitude (4300 s; accept a factor ~3 either way).
    assert 1_500 < outcome.projected_mr_light_s < 15_000
