"""Ablation: AI proving on/off (Section 4.2.3).

The paper: accepting every attribute-inspection interval (original P3C
behaviour) is inconsistent with the core-generation support test; the
added proving step improves the overall result.  With proving off, the
per-cluster relevant-attribute sets can only grow, and quality should
not improve.
"""

from __future__ import annotations

import numpy as np

from repro.core.p3c_plus import P3CPlus, P3CPlusConfig
from repro.eval import e4sc_score
from repro.experiments.runner import format_table, make_dataset


def _sweep(sizes, dims, seed):
    rows = []
    for n in sizes:
        dataset = make_dataset(n, dims, 5, 0.20, seed)
        truth = dataset.ground_truth_clusters()
        scores = {}
        attr_counts = {}
        for proving in (False, True):
            config = P3CPlusConfig(ai_proving=proving)
            result = P3CPlus(config).fit(dataset.data)
            scores[proving] = e4sc_score(result.clusters, truth)
            attr_counts[proving] = sum(
                len(c.relevant_attributes) for c in result.clusters
            )
        rows.append(
            (n, scores[False], scores[True], attr_counts[False], attr_counts[True])
        )
    return rows


def test_ai_proving_ablation(benchmark, bench_scale, save_exhibit):
    rows = benchmark.pedantic(
        lambda: _sweep(
            bench_scale.sizes[:2], bench_scale.dims, bench_scale.seed
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["DB size", "E4SC (no proving)", "E4SC (proving)",
         "#attrs (no proving)", "#attrs (proving)"],
        [list(row) for row in rows],
    )
    save_exhibit(
        "ablation_ai_proving",
        "Ablation — AI proving (Section 4.2.3)\n" + table,
    )

    for _, score_off, score_on, attrs_off, attrs_on in rows:
        # Proving filters suggested intervals: attribute sets shrink or stay.
        assert attrs_on <= attrs_off
        # Quality with proving does not collapse relative to without.
        assert score_on >= score_off - 0.10
    assert float(np.mean([row[2] for row in rows])) > 0.5
