"""Section 7.6 bench: P3C+ vs P3C on the colon-cancer stand-in."""

from __future__ import annotations

from repro.experiments import colon


def test_colon_accuracy(benchmark, save_exhibit):
    outcome = benchmark.pedantic(
        lambda: colon.run(seeds=(7, 11, 23)),
        rounds=1,
        iterations=1,
    )
    save_exhibit("colon", colon.render(outcome))

    # Both algorithms must find real class structure (well above the
    # 55% majority-class floor of a 34/28 split).
    assert outcome.p3c_plus_mean > 0.60
    assert outcome.p3c_mean > 0.60
    # On the synthetic stand-in the paper's exact 4-point gap is within
    # seed noise (module docstring); require the two means to be close
    # rather than strictly ordered.
    assert abs(outcome.p3c_plus_mean - outcome.p3c_mean) < 0.25
