"""Figure 2 bench: the redundant-signature worked example."""

from __future__ import annotations

from repro.experiments import figure2


def test_figure2_redundancy_example(benchmark, save_exhibit):
    outcome = benchmark.pedantic(figure2.run, rounds=1, iterations=1)
    save_exhibit("figure2", figure2.main())

    assert outcome["s3_passes_poisson"]
    assert outcome["s3_removed"]
    assert outcome["s1_kept"] and outcome["s2_kept"]
    # The paper's ratio ordering: S3 <_r S1, S3 <_r S2.
    assert outcome["ratios"]["S3"] < outcome["ratios"]["S1"]
    assert outcome["ratios"]["S3"] < outcome["ratios"]["S2"]
