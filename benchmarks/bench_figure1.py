"""Figure 1 bench: the Poisson test's power at a 1% relative effect."""

from __future__ import annotations

from repro.experiments import figure1


def test_figure1_poisson_power(benchmark, save_exhibit):
    series = benchmark.pedantic(
        lambda: figure1.run(), rounds=1, iterations=1
    )
    save_exhibit("figure1", figure1.main())

    powers = [p for _, p in series]
    # Paper shape: monotone growth towards ~1.
    assert powers == sorted(powers)
    assert powers[-1] > 0.9
    assert powers[0] < 0.2
