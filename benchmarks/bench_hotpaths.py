"""Hot-path microbenchmarks: the data-plane before/after trajectory.

Measures the per-point inner loops the vectorized data plane replaced —
scalar RSSC support counting vs the packed-uint64 batch path, per-row
histogram binning vs whole-block binning — plus the cost of shipping a
task's distributed cache with and without per-worker broadcast, and the
shuffle plane itself: per-pair tuple buckets vs columnar blocks
(``shuffle_tuple`` / ``shuffle_columnar`` / ``shuffle_combined``) and
the scalar combiner loop vs the argsort + sequential ``np.cumsum``
fold (``combine_python`` / ``combine_vectorized``).  Writes
``BENCH_hotpaths.json`` at the repository root so successive runs
record the trajectory (schema v2: ``{bench, n, d, seconds,
points_per_sec, bytes?}`` rows — ``bytes`` is the serialized shuffle
payload size where the bench ships one).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full workload
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick \\
        --min-rssc-speedup 5 --min-shuffle-speedup 3 \\
        --min-shuffle-bytes-reduction 5

The ``--min-*`` flags exit non-zero when a measured ratio falls below
the bound — the CI ``perf-smoke`` gates: batch RSSC vs scalar,
columnar vs tuple shuffle wall time, and the serialized shuffle volume
of the full vectorized plane (combine + columnar) vs raw per-pair
tuples.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.binning import bin_index  # noqa: E402
from repro.core.types import Interval, Signature  # noqa: E402
from repro.mapreduce.cache import DistributedCache  # noqa: E402
from repro.mapreduce.executors import ProcessExecutor  # noqa: E402
from repro.mr.rssc import RSSC  # noqa: E402

SCHEMA = "repro.benchmarks/hotpaths/v2"
DEFAULT_OUT = REPO_ROOT / "BENCH_hotpaths.json"


def _random_signatures(
    rng: np.random.Generator, num_sigs: int, d: int
) -> list[Signature]:
    signatures = []
    for _ in range(num_sigs):
        num_attrs = int(rng.integers(1, min(4, d) + 1))
        attrs = rng.choice(d, size=num_attrs, replace=False)
        intervals = []
        for attribute in attrs:
            lo = float(rng.uniform(0, 0.8))
            hi = lo + float(rng.uniform(0.05, 0.2))
            intervals.append(Interval(int(attribute), lo, min(hi, 1.0)))
        signatures.append(Signature(intervals))
    return signatures


def _row(
    bench: str, n: int, d: int, seconds: float, nbytes: int | None = None
) -> dict:
    row = {
        "bench": bench,
        "n": n,
        "d": d,
        "seconds": round(seconds, 6),
        "points_per_sec": round(n / seconds, 1) if seconds > 0 else None,
    }
    if nbytes is not None:
        row["bytes"] = int(nbytes)
    return row


def bench_rssc(
    rng: np.random.Generator, n: int, d: int, num_candidates: int, scalar_n: int
) -> tuple[list[dict], float]:
    """Scalar vs batch support counting; returns (rows, speedup)."""
    data = rng.uniform(size=(n, d))
    rssc = RSSC(_random_signatures(rng, num_candidates, d))

    scalar_counts = np.zeros(rssc.num_signatures, dtype=np.int64)
    started = time.perf_counter()
    for point in data[:scalar_n]:
        rssc.add_point(point, scalar_counts)
    scalar_s = time.perf_counter() - started

    batch_counts = np.zeros(rssc.num_signatures, dtype=np.int64)
    started = time.perf_counter()
    rssc.add_points(data, batch_counts)
    batch_s = time.perf_counter() - started

    # Parity guard: the benchmark refuses to report a speedup for a
    # batch path that diverged from the scalar oracle.
    check = np.zeros(rssc.num_signatures, dtype=np.int64)
    rssc.add_points(data[:scalar_n], check)
    if not np.array_equal(check, scalar_counts):
        raise AssertionError("batch RSSC diverged from the scalar oracle")

    scalar_pps = scalar_n / scalar_s
    batch_pps = n / batch_s
    speedup = batch_pps / scalar_pps
    rows = [
        _row("rssc_scalar", scalar_n, d, scalar_s),
        _row("rssc_batch", n, d, batch_s),
    ]
    return rows, speedup


def bench_histogram(rng: np.random.Generator, n: int, d: int) -> list[dict]:
    """Per-row Eq. 8 binning (the pre-PR mapper loop) vs whole-block."""
    data = rng.uniform(size=(n, d))
    num_bins = max(1, round(n ** (1.0 / 3.0)))

    row_counts = np.zeros((d, num_bins), dtype=np.int64)
    started = time.perf_counter()
    for point in data:
        bins = bin_index(point, num_bins)
        row_counts[np.arange(d), bins] += 1
    rows_s = time.perf_counter() - started

    batch_counts = np.zeros((d, num_bins), dtype=np.int64)
    started = time.perf_counter()
    bins = bin_index(data, num_bins)
    for attribute in range(d):
        batch_counts[attribute] += np.bincount(
            bins[:, attribute], minlength=num_bins
        )
    batch_s = time.perf_counter() - started

    if not np.array_equal(row_counts, batch_counts):
        raise AssertionError("batch histogram diverged from the per-row path")
    return [
        _row("histogram_rows", n, d, rows_s),
        _row("histogram_batch", n, d, batch_s),
    ]


def bench_cache_dispatch(
    rng: np.random.Generator, d: int, num_candidates: int, num_tasks: int
) -> list[dict]:
    """Per-task cache pickling vs fingerprint-keyed handle dispatch.

    ``n`` is the task count here; ``points_per_sec`` reads as tasks/s.
    """
    cache = DistributedCache(
        {
            "rssc": RSSC(_random_signatures(rng, num_candidates, d)),
            "params": rng.uniform(size=(num_candidates, d)),
        }
    )
    started = time.perf_counter()
    for _ in range(num_tasks):
        pickle.loads(pickle.dumps(cache, protocol=5))
    per_task_s = time.perf_counter() - started

    executor = ProcessExecutor(max_workers=1)
    started = time.perf_counter()
    handle = executor.broadcast(cache)  # one registration...
    for _ in range(num_tasks):  # ...then O(1)-byte handles per task
        pickle.loads(pickle.dumps(handle, protocol=5))
    broadcast_s = time.perf_counter() - started
    return [
        _row("cache_per_task", num_tasks, d, per_task_s),
        _row("cache_broadcast", num_tasks, d, broadcast_s),
    ]


def _shuffle_roundtrip(
    pairs: list, num_partitions: int, columnar: bool
) -> tuple[float, int, list]:
    """Scatter + pickle round trip + gather of one map task's pairs.

    Models the process-executor transport: the serialized payload size
    is what would cross the process boundary.  Returns
    ``(seconds, payload_bytes, gathered_partitions)``.
    """
    from repro.mapreduce.counters import Counters
    from repro.mapreduce.job import HashPartitioner
    from repro.mapreduce.runtime import Shuffle

    shuffle = Shuffle(HashPartitioner(), num_partitions, columnar=columnar)
    started = time.perf_counter()
    payload = shuffle.scatter(pairs, Counters())
    blob = pickle.dumps(payload, protocol=5)
    partitions = Shuffle.gather([pickle.loads(blob)], num_partitions)
    return time.perf_counter() - started, len(blob), partitions


def _grouped_sums(partitions: list) -> dict:
    """Reduce-side oracle: per-key summed values of every partition."""
    from repro.mapreduce.job import group_sorted_pairs
    from repro.mapreduce.types import bucket_pairs

    sums: dict = {}
    for bucket in partitions:
        for key, values in group_sorted_pairs(bucket_pairs(bucket)):
            total = values[0].copy()
            for value in values[1:]:
                total += value
            sums[key] = sums.get(key, 0) + total
    return sums


def bench_shuffle(
    rng: np.random.Generator, n: int, d: int, num_partitions: int = 8
) -> tuple[list[dict], float, float]:
    """Tuple vs columnar vs combined+columnar shuffle planes.

    Returns ``(rows, speedup, bytes_reduction)``: the wall-time ratio
    of the tuple and columnar planes on identical per-point pairs, and
    the serialized-volume ratio between raw per-pair tuples and the
    full vectorized plane (map-side combine, then columnar buckets).
    """
    from repro.mapreduce.job import fold_uniform_pairs

    data = rng.uniform(size=(n, d))
    pairs = [(int(i % 64), data[i]) for i in range(n)]

    tuple_s, tuple_b, tuple_parts = _shuffle_roundtrip(
        pairs, num_partitions, columnar=False
    )
    col_s, col_b, col_parts = _shuffle_roundtrip(
        pairs, num_partitions, columnar=True
    )

    started = time.perf_counter()
    combined = fold_uniform_pairs(pairs)
    fold_s = time.perf_counter() - started
    assert combined is not None
    comb_s, comb_b, comb_parts = _shuffle_roundtrip(
        combined, num_partitions, columnar=True
    )
    comb_s += fold_s  # the combine is part of this plane's cost

    # Parity guard: every plane must deliver identical reduce input.
    oracle = _grouped_sums(tuple_parts)
    for label, parts in (("columnar", col_parts), ("combined", comb_parts)):
        got = _grouped_sums(parts)
        if set(got) != set(oracle) or any(
            not np.array_equal(got[k], oracle[k]) for k in oracle
        ):
            raise AssertionError(
                f"{label} shuffle plane diverged from the tuple oracle"
            )

    speedup = tuple_s / col_s if col_s > 0 else float("inf")
    bytes_reduction = tuple_b / comb_b if comb_b > 0 else float("inf")
    rows = [
        _row("shuffle_tuple", n, d, tuple_s, tuple_b),
        _row("shuffle_columnar", n, d, col_s, col_b),
        _row("shuffle_combined", n, d, comb_s, comb_b),
    ]
    return rows, speedup, bytes_reduction


def bench_combine(
    rng: np.random.Generator, n: int, d: int, num_keys: int = 64
) -> tuple[list[dict], float]:
    """Scalar combiner loop vs the argsort + ``np.cumsum`` fold."""
    from repro.mapreduce.job import (
        ArraySumCombiner,
        Context,
        fold_uniform_pairs,
        group_sorted_pairs,
    )
    from repro.mapreduce.cache import DistributedCache
    from repro.mapreduce.counters import Counters

    data = rng.uniform(size=(n, d))
    pairs = [(int(i % num_keys), data[i]) for i in range(n)]

    combiner = ArraySumCombiner()
    ctx = Context(DistributedCache(), Counters(), task_id=0)
    started = time.perf_counter()
    for key, values in group_sorted_pairs(list(pairs)):
        combiner.combine(key, values, ctx)
    scalar_out = ctx.drain()
    scalar_s = time.perf_counter() - started

    started = time.perf_counter()
    vector_out = fold_uniform_pairs(pairs)
    vector_s = time.perf_counter() - started

    assert vector_out is not None
    if len(scalar_out) != len(vector_out) or any(
        ks != kv or not np.array_equal(vs, vv)
        for (ks, vs), (kv, vv) in zip(scalar_out, vector_out)
    ):
        raise AssertionError(
            "vectorized combine diverged from the scalar oracle"
        )
    speedup = scalar_s / vector_s if vector_s > 0 else float("inf")
    rows = [
        _row("combine_python", n, d, scalar_s),
        _row("combine_vectorized", n, d, vector_s),
    ]
    return rows, speedup


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None, help="points per split")
    parser.add_argument("--d", type=int, default=20, help="dimensionality")
    parser.add_argument(
        "--candidates", type=int, default=256, help="candidate signatures"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke workload (smaller n; same candidate count)",
    )
    parser.add_argument(
        "--min-rssc-speedup",
        type=float,
        default=None,
        help="fail unless batch RSSC >= this multiple of the scalar path",
    )
    parser.add_argument(
        "--min-shuffle-speedup",
        type=float,
        default=None,
        help="fail unless the columnar shuffle round trip is >= this "
        "multiple faster than the tuple plane",
    )
    parser.add_argument(
        "--min-shuffle-bytes-reduction",
        type=float,
        default=None,
        help="fail unless the combined+columnar plane ships >= this "
        "multiple fewer serialized bytes than raw per-pair tuples",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (10_000 if args.quick else 100_000)
    scalar_n = min(n, 10_000 if args.quick else 20_000)
    rng = np.random.default_rng(args.seed)

    rows: list[dict] = []
    rssc_rows, speedup = bench_rssc(rng, n, args.d, args.candidates, scalar_n)
    rows.extend(rssc_rows)
    rows.extend(bench_histogram(rng, n, args.d))
    rows.extend(bench_cache_dispatch(rng, args.d, args.candidates, 64))
    shuffle_rows, shuffle_speedup, bytes_reduction = bench_shuffle(
        rng, n, args.d
    )
    rows.extend(shuffle_rows)
    combine_rows, combine_speedup = bench_combine(rng, n, args.d)
    rows.extend(combine_rows)

    report = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "workload": {"n": n, "d": args.d, "candidates": args.candidates},
        "rssc_speedup": round(speedup, 2),
        "shuffle_speedup": round(shuffle_speedup, 2),
        "shuffle_bytes_reduction": round(bytes_reduction, 2),
        "combine_speedup": round(combine_speedup, 2),
        "rows": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(r["bench"]) for r in rows)
    print(
        f"{'bench':<{width}} {'n':>8} {'d':>4} {'seconds':>10} "
        f"{'points/s':>14} {'bytes':>10}"
    )
    for r in rows:
        pps = f"{r['points_per_sec']:,.0f}" if r["points_per_sec"] else "-"
        nbytes = f"{r['bytes']:,}" if "bytes" in r else "-"
        print(
            f"{r['bench']:<{width}} {r['n']:>8} {r['d']:>4} "
            f"{r['seconds']:>10.4f} {pps:>14} {nbytes:>10}"
        )
    print(f"\nbatch RSSC speedup over scalar: {speedup:.1f}x")
    print(f"columnar shuffle speedup over tuple: {shuffle_speedup:.1f}x")
    print(
        "combined+columnar shuffle bytes reduction: "
        f"{bytes_reduction:.1f}x"
    )
    print(f"vectorized combine speedup over scalar: {combine_speedup:.1f}x")
    print(f"[saved to {args.out}]")

    failed = False
    for label, measured, bound in (
        ("batch RSSC speedup", speedup, args.min_rssc_speedup),
        ("columnar shuffle speedup", shuffle_speedup, args.min_shuffle_speedup),
        (
            "shuffle bytes reduction",
            bytes_reduction,
            args.min_shuffle_bytes_reduction,
        ),
    ):
        if bound is not None and measured < bound:
            print(
                f"FAIL: {label} {measured:.1f}x is below the "
                f"required {bound:g}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
