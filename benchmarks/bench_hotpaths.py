"""Hot-path microbenchmarks: the data-plane before/after trajectory.

Measures the per-point inner loops the vectorized data plane replaced —
scalar RSSC support counting vs the packed-uint64 batch path, per-row
histogram binning vs whole-block binning — plus the cost of shipping a
task's distributed cache with and without per-worker broadcast.  Writes
``BENCH_hotpaths.json`` at the repository root so successive runs
record the trajectory (schema: ``{bench, n, d, seconds,
points_per_sec}`` rows).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full workload
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick --min-rssc-speedup 5

``--min-rssc-speedup X`` exits non-zero when the batch RSSC is not at
least ``X``× the scalar path — the CI ``perf-smoke`` gate.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.binning import bin_index  # noqa: E402
from repro.core.types import Interval, Signature  # noqa: E402
from repro.mapreduce.cache import DistributedCache  # noqa: E402
from repro.mapreduce.executors import ProcessExecutor  # noqa: E402
from repro.mr.rssc import RSSC  # noqa: E402

SCHEMA = "repro.benchmarks/hotpaths/v1"
DEFAULT_OUT = REPO_ROOT / "BENCH_hotpaths.json"


def _random_signatures(
    rng: np.random.Generator, num_sigs: int, d: int
) -> list[Signature]:
    signatures = []
    for _ in range(num_sigs):
        num_attrs = int(rng.integers(1, min(4, d) + 1))
        attrs = rng.choice(d, size=num_attrs, replace=False)
        intervals = []
        for attribute in attrs:
            lo = float(rng.uniform(0, 0.8))
            hi = lo + float(rng.uniform(0.05, 0.2))
            intervals.append(Interval(int(attribute), lo, min(hi, 1.0)))
        signatures.append(Signature(intervals))
    return signatures


def _row(bench: str, n: int, d: int, seconds: float) -> dict:
    return {
        "bench": bench,
        "n": n,
        "d": d,
        "seconds": round(seconds, 6),
        "points_per_sec": round(n / seconds, 1) if seconds > 0 else None,
    }


def bench_rssc(
    rng: np.random.Generator, n: int, d: int, num_candidates: int, scalar_n: int
) -> tuple[list[dict], float]:
    """Scalar vs batch support counting; returns (rows, speedup)."""
    data = rng.uniform(size=(n, d))
    rssc = RSSC(_random_signatures(rng, num_candidates, d))

    scalar_counts = np.zeros(rssc.num_signatures, dtype=np.int64)
    started = time.perf_counter()
    for point in data[:scalar_n]:
        rssc.add_point(point, scalar_counts)
    scalar_s = time.perf_counter() - started

    batch_counts = np.zeros(rssc.num_signatures, dtype=np.int64)
    started = time.perf_counter()
    rssc.add_points(data, batch_counts)
    batch_s = time.perf_counter() - started

    # Parity guard: the benchmark refuses to report a speedup for a
    # batch path that diverged from the scalar oracle.
    check = np.zeros(rssc.num_signatures, dtype=np.int64)
    rssc.add_points(data[:scalar_n], check)
    if not np.array_equal(check, scalar_counts):
        raise AssertionError("batch RSSC diverged from the scalar oracle")

    scalar_pps = scalar_n / scalar_s
    batch_pps = n / batch_s
    speedup = batch_pps / scalar_pps
    rows = [
        _row("rssc_scalar", scalar_n, d, scalar_s),
        _row("rssc_batch", n, d, batch_s),
    ]
    return rows, speedup


def bench_histogram(rng: np.random.Generator, n: int, d: int) -> list[dict]:
    """Per-row Eq. 8 binning (the pre-PR mapper loop) vs whole-block."""
    data = rng.uniform(size=(n, d))
    num_bins = max(1, round(n ** (1.0 / 3.0)))

    row_counts = np.zeros((d, num_bins), dtype=np.int64)
    started = time.perf_counter()
    for point in data:
        bins = bin_index(point, num_bins)
        row_counts[np.arange(d), bins] += 1
    rows_s = time.perf_counter() - started

    batch_counts = np.zeros((d, num_bins), dtype=np.int64)
    started = time.perf_counter()
    bins = bin_index(data, num_bins)
    for attribute in range(d):
        batch_counts[attribute] += np.bincount(
            bins[:, attribute], minlength=num_bins
        )
    batch_s = time.perf_counter() - started

    if not np.array_equal(row_counts, batch_counts):
        raise AssertionError("batch histogram diverged from the per-row path")
    return [
        _row("histogram_rows", n, d, rows_s),
        _row("histogram_batch", n, d, batch_s),
    ]


def bench_cache_dispatch(
    rng: np.random.Generator, d: int, num_candidates: int, num_tasks: int
) -> list[dict]:
    """Per-task cache pickling vs fingerprint-keyed handle dispatch.

    ``n`` is the task count here; ``points_per_sec`` reads as tasks/s.
    """
    cache = DistributedCache(
        {
            "rssc": RSSC(_random_signatures(rng, num_candidates, d)),
            "params": rng.uniform(size=(num_candidates, d)),
        }
    )
    started = time.perf_counter()
    for _ in range(num_tasks):
        pickle.loads(pickle.dumps(cache, protocol=5))
    per_task_s = time.perf_counter() - started

    executor = ProcessExecutor(max_workers=1)
    started = time.perf_counter()
    handle = executor.broadcast(cache)  # one registration...
    for _ in range(num_tasks):  # ...then O(1)-byte handles per task
        pickle.loads(pickle.dumps(handle, protocol=5))
    broadcast_s = time.perf_counter() - started
    return [
        _row("cache_per_task", num_tasks, d, per_task_s),
        _row("cache_broadcast", num_tasks, d, broadcast_s),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None, help="points per split")
    parser.add_argument("--d", type=int, default=20, help="dimensionality")
    parser.add_argument(
        "--candidates", type=int, default=256, help="candidate signatures"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke workload (smaller n; same candidate count)",
    )
    parser.add_argument(
        "--min-rssc-speedup",
        type=float,
        default=None,
        help="fail unless batch RSSC >= this multiple of the scalar path",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (10_000 if args.quick else 100_000)
    scalar_n = min(n, 10_000 if args.quick else 20_000)
    rng = np.random.default_rng(args.seed)

    rows: list[dict] = []
    rssc_rows, speedup = bench_rssc(rng, n, args.d, args.candidates, scalar_n)
    rows.extend(rssc_rows)
    rows.extend(bench_histogram(rng, n, args.d))
    rows.extend(bench_cache_dispatch(rng, args.d, args.candidates, 64))

    report = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "workload": {"n": n, "d": args.d, "candidates": args.candidates},
        "rssc_speedup": round(speedup, 2),
        "rows": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(r["bench"]) for r in rows)
    print(f"{'bench':<{width}} {'n':>8} {'d':>4} {'seconds':>10} {'points/s':>14}")
    for r in rows:
        pps = f"{r['points_per_sec']:,.0f}" if r["points_per_sec"] else "-"
        print(
            f"{r['bench']:<{width}} {r['n']:>8} {r['d']:>4} "
            f"{r['seconds']:>10.4f} {pps:>14}"
        )
    print(f"\nbatch RSSC speedup over scalar: {speedup:.1f}x")
    print(f"[saved to {args.out}]")

    if args.min_rssc_speedup is not None and speedup < args.min_rssc_speedup:
        print(
            f"FAIL: batch RSSC speedup {speedup:.1f}x is below the "
            f"required {args.min_rssc_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
