"""Ablation: Sturges vs Freedman-Diaconis binning (Section 4.1.1).

The paper's argument: Sturges' rule oversmooths — its bin count grows
only logarithmically, so the histogram approximation of the data
distribution (and with it every detected interval boundary) stops
improving as n grows, while the Freedman-Diaconis count grows like
n^(1/3).  This bench measures it directly: the mean boundary error of
the detected relevant intervals against the true hidden-cluster
intervals, per rule, over a size sweep.  End-to-end E4SC at these
scaled sizes is seed-noise dominated (see EXPERIMENTS.md), so the
boundary error is the right observable.
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import build_all_histograms
from repro.core.intervals import find_relevant_intervals
from repro.core.p3c_plus import P3CPlusConfig
from repro.experiments.runner import format_table, make_dataset


def _boundary_error(dataset, rule: str) -> float:
    """Mean absolute boundary error of detected vs true intervals."""
    config = P3CPlusConfig(binning=rule)
    num_bins = config.num_bins(len(dataset.data))
    histograms = build_all_histograms(dataset.data, num_bins)
    detected = find_relevant_intervals(histograms, alpha=config.chi2_alpha)
    by_attr: dict[int, list] = {}
    for interval in detected:
        by_attr.setdefault(interval.attribute, []).append(interval)

    errors = []
    for cluster in dataset.hidden_clusters:
        for true_interval in cluster.signature:
            overlapping = [
                found
                for found in by_attr.get(true_interval.attribute, [])
                if found.overlaps(true_interval)
            ]
            if not overlapping:
                # Missed interval: error = full width (worst case).
                errors.append(true_interval.width)
                continue
            lower = min(found.lower for found in overlapping)
            upper = max(found.upper for found in overlapping)
            errors.append(
                abs(lower - true_interval.lower)
                + abs(upper - true_interval.upper)
            )
    return float(np.mean(errors))


def _sweep(sizes, dims, seed):
    rows = []
    for n in sizes:
        dataset = make_dataset(n, dims, 5, 0.10, seed)
        rows.append(
            (
                n,
                P3CPlusConfig(binning="sturges").num_bins(n),
                _boundary_error(dataset, "sturges"),
                P3CPlusConfig(binning="freedman-diaconis").num_bins(n),
                _boundary_error(dataset, "freedman-diaconis"),
            )
        )
    return rows


def test_binning_rule_ablation(benchmark, bench_scale, save_exhibit):
    sizes = tuple(bench_scale.sizes) + (4 * bench_scale.sizes[-1],)
    rows = benchmark.pedantic(
        lambda: _sweep(sizes, bench_scale.dims, bench_scale.seed),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        [
            "DB size",
            "Sturges bins",
            "Sturges boundary err",
            "FD bins",
            "FD boundary err",
        ],
        [list(row) for row in rows],
    )
    save_exhibit(
        "ablation_binning",
        "Ablation — binning rule (Section 4.1.1): mean interval-boundary "
        "error vs ground truth\n" + table,
    )

    largest = rows[-1]
    # FD resolves the distribution finer than Sturges at scale...
    assert largest[3] > largest[1]
    # ...and its boundary error is smaller at the largest size.
    assert largest[4] <= largest[2] + 1e-9
    # FD's error shrinks from the smallest to the largest size.
    assert rows[-1][4] < rows[0][4]
