"""Figure 4 bench: naive vs MVB outlier detection quality (E4SC)."""

from __future__ import annotations

from repro.experiments import figure4
from repro.experiments.configs import ExperimentScale


def test_figure4_outlier_detection(benchmark, bench_scale, save_exhibit):
    scale = ExperimentScale(
        name="figure4",
        sizes=bench_scale.sizes,
        dims=bench_scale.dims,
        seed=bench_scale.seed,
    )
    noise_levels = (0.05, 0.20)
    num_clusters = (3, 5)
    rows = benchmark.pedantic(
        lambda: figure4.run(
            scale, noise_levels=noise_levels, num_clusters=num_clusters
        ),
        rounds=1,
        iterations=1,
    )
    save_exhibit("figure4", figure4.render(rows))

    # Paper shape: MVB >= NAIVE in (almost) every cell.
    by_key: dict[tuple, dict[str, float]] = {}
    for row in rows:
        key = (row.noise, row.num_clusters, row.n)
        by_key.setdefault(key, {})[row.detector] = row.e4sc
    wins = sum(
        1 for cell in by_key.values() if cell["MVB"] >= cell["NAIVE"] - 0.02
    )
    assert wins >= int(0.7 * len(by_key)), (
        f"MVB won only {wins}/{len(by_key)} cells"
    )
