"""Ablation: multi-level candidate collection vs prove-every-level
(Section 5.3's T_c heuristic).

The heuristic trades extra counted candidates (weaker Apriori pruning)
for fewer proving jobs — each MR job carries fixed I/O overhead.  Both
modes must produce identical cluster cores.
"""

from __future__ import annotations

from repro.experiments.runner import format_table, make_dataset
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight


def _run(dataset, multi_level: bool, t_c: int = 100):
    driver = P3CPlusMRLight(
        mr_config=P3CPlusMRConfig(
            num_splits=4, multi_level=multi_level, t_c=t_c
        )
    )
    result = driver.fit(dataset.data)
    proving_jobs = sum(
        1 for step in driver.chain.steps if step.name == "candidate_proving"
    )
    counted = sum(
        step.result.counters.framework_value("map_input_records")
        for step in driver.chain.steps
        if step.name == "candidate_proving"
    )
    return result, proving_jobs, counted


def test_multilevel_collection_ablation(benchmark, bench_scale, save_exhibit):
    dataset = make_dataset(
        bench_scale.sizes[0], bench_scale.dims, 5, 0.10, bench_scale.seed
    )

    per_level_result, per_level_jobs, _ = _run(dataset, multi_level=False)
    multi_result, multi_jobs, _ = benchmark.pedantic(
        lambda: _run(dataset, multi_level=True),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["mode", "proving jobs", "#clusters"],
        [
            ["prove-every-level", per_level_jobs, per_level_result.num_clusters],
            ["multi-level (T_c)", multi_jobs, multi_result.num_clusters],
        ],
    )
    save_exhibit(
        "ablation_multilevel",
        "Ablation — multi-level candidate collection (Section 5.3)\n" + table,
    )

    # Identical cores in both modes.
    assert sorted(
        (c.core.signature for c in per_level_result.clusters),
        key=lambda s: s.intervals,
    ) == sorted(
        (c.core.signature for c in multi_result.clusters),
        key=lambda s: s.intervals,
    )
    # The heuristic must not use *more* proving jobs.
    assert multi_jobs <= per_level_jobs
