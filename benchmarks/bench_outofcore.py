"""Out-of-core data-plane benchmark: bounded RSS and spill throughput.

Proves the two headline properties of the out-of-core plane on a
dataset that is deliberately larger than the configured memory budget:

- **Phase 1 — bounded scan.**  A ``.npy`` matrix is written to disk in
  streaming chunks (the full matrix is never resident), then a
  column-statistics MR job consumes it through
  :func:`~repro.mapreduce.fs.make_npy_splits` under
  ``JobConf.memory_budget_bytes``.  The runtime derives a per-chunk row
  cap from the budget, so peak RSS growth during the job must stay a
  small fraction of the dataset size.  ``peak_rss_ratio`` = (RSS
  high-water delta across phase 1) / dataset bytes.
- **Phase 2 — spill-to-disk shuffle.**  A row-scatter job re-keys every
  row and shuffles the whole matrix through the columnar plane with the
  same budget, forcing over-budget buckets onto disk as compressed npz
  segments.  ``spilled_bytes`` / ``spill_segments`` come from the
  framework counters.

Writes ``BENCH_outofcore.json`` at the repository root (schema v1).

Usage::

    PYTHONPATH=src python benchmarks/bench_outofcore.py           # full
    PYTHONPATH=src python benchmarks/bench_outofcore.py --quick   # CI
    PYTHONPATH=src python benchmarks/bench_outofcore.py --quick \\
        --max-rss-ratio 0.6 --min-spilled 1

``--max-rss-ratio`` exits non-zero when the phase-1 RSS delta exceeds
the given fraction of the dataset; ``--min-spilled`` exits non-zero
when the phase-2 shuffle spilled fewer bytes than required.  These are
the CI ``outofcore-smoke`` gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.mapreduce.fs import make_npy_splits  # noqa: E402
from repro.mapreduce.job import (  # noqa: E402
    ArraySumCombiner,
    BatchMapper,
    Job,
    Reducer,
)
from repro.mapreduce.runtime import MapReduceRuntime  # noqa: E402
from repro.mapreduce.types import JobConf  # noqa: E402
from repro.obs.resources import peak_rss_kb  # noqa: E402

SCHEMA = "repro.benchmarks/outofcore/v1"
DEFAULT_OUT = REPO_ROOT / "BENCH_outofcore.json"

#: Rows written per chunk while generating the input matrix; keeps the
#: generator's own footprint far below the dataset it produces.
_GEN_ROWS = 65536


def write_streaming_npy(path: Path, n: int, d: int, seed: int) -> int:
    """Write an ``(n, d)`` float64 ``.npy`` without materialising it."""
    header = {
        "descr": "<f8",
        "fortran_order": False,
        "shape": (n, d),
    }
    rng = np.random.default_rng(seed)
    with open(path, "wb") as handle:
        np.lib.format.write_array_header_1_0(handle, header)
        written = 0
        while written < n:
            rows = min(_GEN_ROWS, n - written)
            chunk = rng.uniform(size=(rows, d))
            handle.write(chunk.tobytes())
            written += rows
    return n * d * 8


class ColumnStatsMapper(BatchMapper):
    """Streams chunks, accumulates per-column sums, emits in cleanup."""

    def setup(self, context) -> None:
        self._sums = None
        self._count = 0

    def map_batch(self, keys, block, context) -> None:
        partial = block.sum(axis=0)
        if self._sums is None:
            self._sums = partial
        else:
            self._sums = self._sums + partial
        self._count += block.shape[0]

    def cleanup(self, context) -> None:
        if self._sums is not None:
            context.emit(0, np.concatenate(([float(self._count)], self._sums)))


class ColumnStatsReducer(Reducer):
    def reduce(self, key, values, context) -> None:
        total = values[0].copy()
        for value in values[1:]:
            total += value
        context.emit(key, total)


class RowScatterMapper(BatchMapper):
    """Re-keys every row — the shuffle-heavy half of the benchmark."""

    def map_batch(self, keys, block, context) -> None:
        for i, key in enumerate(keys):
            context.emit(int(key) % 16, block[i])


class RowCountReducer(Reducer):
    def reduce(self, key, values, context) -> None:
        context.emit(key, len(values))


def bench_bounded_scan(
    path: Path, n: int, d: int, num_splits: int, budget: int
) -> dict:
    """Phase 1: column stats over npy splits under a memory budget."""
    splits, _, _ = make_npy_splits(path, num_splits, mode="read")
    baseline_kb = peak_rss_kb()
    job = Job(
        mapper_factory=ColumnStatsMapper,
        reducer_factory=ColumnStatsReducer,
        combiner_factory=ArraySumCombiner,
    )
    conf = JobConf(
        name="outofcore-scan",
        num_reducers=1,
        memory_budget_bytes=budget,
    )
    runtime = MapReduceRuntime(executor="serial")
    started = time.perf_counter()
    result = runtime.run(job, splits, conf)
    seconds = time.perf_counter() - started
    peak_kb = peak_rss_kb()
    (_, stats), = result.output
    assert int(stats[0]) == n, "scan lost rows"
    dataset_bytes = n * d * 8
    return {
        "bench": "bounded_scan",
        "n": n,
        "d": d,
        "seconds": round(seconds, 6),
        "rows_per_sec": round(n / seconds, 1) if seconds > 0 else None,
        "dataset_bytes": dataset_bytes,
        "baseline_rss_kb": baseline_kb,
        "peak_rss_kb": peak_kb,
        "rss_delta_kb": peak_kb - baseline_kb,
        "peak_rss_ratio": round(
            (peak_kb - baseline_kb) * 1024 / dataset_bytes, 6
        ),
    }


def bench_spill_shuffle(
    path: Path, n: int, d: int, num_splits: int, budget: int
) -> dict:
    """Phase 2: full-matrix re-key shuffle forced through the spill."""
    splits, _, _ = make_npy_splits(path, num_splits, mode="read")
    job = Job(
        mapper_factory=RowScatterMapper,
        reducer_factory=RowCountReducer,
    )
    conf = JobConf(
        name="outofcore-shuffle",
        num_reducers=4,
        memory_budget_bytes=budget,
    )
    runtime = MapReduceRuntime(executor="serial")
    started = time.perf_counter()
    result = runtime.run(job, splits, conf)
    seconds = time.perf_counter() - started
    assert sum(count for _, count in result.output) == n, "shuffle lost rows"
    counters = result.counters
    return {
        "bench": "spill_shuffle",
        "n": n,
        "d": d,
        "seconds": round(seconds, 6),
        "rows_per_sec": round(n / seconds, 1) if seconds > 0 else None,
        "shuffle_bytes": counters.framework_value("shuffle_bytes"),
        "spilled_bytes": counters.framework_value("spilled_bytes"),
        "spill_segments": counters.framework_value("spill_segments"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path"
    )
    parser.add_argument(
        "--max-rss-ratio",
        type=float,
        default=None,
        help="fail when phase-1 RSS delta exceeds this fraction of the "
        "dataset size",
    )
    parser.add_argument(
        "--min-spilled",
        type=int,
        default=None,
        help="fail when the phase-2 shuffle spilled fewer bytes",
    )
    args = parser.parse_args(argv)

    # The scan matrix must dwarf the process's import-time RSS
    # high-water (~120 MB with numpy loaded): if a regression ever
    # materialises the whole matrix, the high-water visibly jumps and
    # the ratio gate trips.  A dataset smaller than the baseline would
    # hide inside it and make the gate vacuous.
    if args.quick:
        n, d, num_splits = 2_000_000, 8, 8
        budget = 4 * 1024 * 1024
        shuffle_n = 60_000
        shuffle_budget = 256 * 1024
    else:
        n, d, num_splits = 8_000_000, 12, 16
        budget = 16 * 1024 * 1024
        shuffle_n = 400_000
        shuffle_budget = 1024 * 1024

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-outofcore-") as tmp:
        scan_path = Path(tmp) / "scan.npy"
        dataset_bytes = write_streaming_npy(scan_path, n, d, seed=11)
        print(
            f"phase 1: scanning {dataset_bytes / 1e6:.0f} MB "
            f"({n} x {d}) under a {budget / 1e6:.1f} MB budget"
        )
        scan = bench_bounded_scan(scan_path, n, d, num_splits, budget)
        rows.append(scan)
        print(
            f"  {scan['seconds']:.2f}s, RSS delta "
            f"{scan['rss_delta_kb']} KiB "
            f"(ratio {scan['peak_rss_ratio']:.3f})"
        )

        shuffle_path = Path(tmp) / "shuffle.npy"
        write_streaming_npy(shuffle_path, shuffle_n, d, seed=12)
        print(
            f"phase 2: shuffling {shuffle_n} x {d} rows under a "
            f"{shuffle_budget / 1e3:.0f} KB budget"
        )
        shuffle = bench_spill_shuffle(
            shuffle_path, shuffle_n, d, num_splits, shuffle_budget
        )
        rows.append(shuffle)
        print(
            f"  {shuffle['seconds']:.2f}s, spilled "
            f"{shuffle['spilled_bytes']} bytes in "
            f"{shuffle['spill_segments']} segments"
        )

    artifact = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "peak_rss_ratio": rows[0]["peak_rss_ratio"],
        "spilled_bytes": rows[1]["spilled_bytes"],
        "spill_segments": rows[1]["spill_segments"],
        "scan_rows_per_sec": rows[0]["rows_per_sec"],
        "shuffle_rows_per_sec": rows[1]["rows_per_sec"],
        "rows": rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    status = 0
    if (
        args.max_rss_ratio is not None
        and artifact["peak_rss_ratio"] > args.max_rss_ratio
    ):
        print(
            f"FAIL: peak_rss_ratio {artifact['peak_rss_ratio']:.3f} exceeds "
            f"--max-rss-ratio {args.max_rss_ratio}",
            file=sys.stderr,
        )
        status = 1
    if (
        args.min_spilled is not None
        and artifact["spilled_bytes"] < args.min_spilled
    ):
        print(
            f"FAIL: spilled_bytes {artifact['spilled_bytes']} below "
            f"--min-spilled {args.min_spilled}",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
