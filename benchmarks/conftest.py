"""Benchmark-suite plumbing.

Every benchmark regenerates one paper exhibit: it runs the experiment
harness once inside pytest-benchmark (``pedantic`` with a single round —
these are minutes-scale experiments, not microbenchmarks), prints the
exhibit's table and persists it under ``benchmarks/output/`` so the
rendered exhibits survive the run.

``REPRO_BENCH_SCALE=full`` switches from the quick grid to the larger
sweep (see ``repro.experiments.configs``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.configs import FULL_SCALE, QUICK_SCALE, ExperimentScale

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    profile = os.environ.get("REPRO_BENCH_SCALE", "quick")
    return FULL_SCALE if profile == "full" else QUICK_SCALE


@pytest.fixture(scope="session")
def save_exhibit():
    """Print an exhibit and persist it to benchmarks/output/<name>.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
