"""Figure 6 bench: quality of BoW (Light/MVB) vs P3C+-MR (Light/MVB)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure6
from repro.experiments.configs import ExperimentScale


def test_figure6_quality_grid(benchmark, bench_scale, save_exhibit):
    scale = ExperimentScale(
        name="figure6",
        sizes=bench_scale.sizes,
        dims=bench_scale.dims,
        samples_per_reducer=bench_scale.samples_per_reducer,
        seed=bench_scale.seed,
    )
    num_clusters = (3, 5)
    noise_levels = (0.0, 0.10)
    rows = benchmark.pedantic(
        lambda: figure6.run(
            scale, num_clusters=num_clusters, noise_levels=noise_levels
        ),
        rounds=1,
        iterations=1,
    )
    save_exhibit("figure6", figure6.render(rows))

    def mean_score(name: str, n: int | None = None) -> float:
        return float(
            np.mean(
                [
                    r.e4sc
                    for r in rows
                    if r.algorithm == name and (n is None or r.n == n)
                ]
            )
        )

    sizes = sorted({r.n for r in rows})
    largest, smallest = sizes[-1], sizes[0]

    # Paper shape 1: the exact MR algorithms beat (or tie) the
    # approximate BoW per variant — decisively at the largest size,
    # where BoW uses several partitions.
    assert mean_score("MR (Light)", largest) >= mean_score(
        "BoW (Light)", largest
    )
    assert mean_score("MR (MVB)", largest) >= mean_score(
        "BoW (MVB)", largest
    )

    # Paper shape 2: BoW's quality degrades as the data (and partition
    # count) grows; MR's does not degrade comparably.
    bow_drop = mean_score("BoW (Light)", smallest) - mean_score(
        "BoW (Light)", largest
    )
    mr_drop = mean_score("MR (Light)", smallest) - mean_score(
        "MR (Light)", largest
    )
    assert mr_drop <= bow_drop + 0.05

    # Both MR variants deliver usable quality on the largest size.
    # (The paper's Light-beats-MVB ordering emerges from the blurring
    # effect at cluster-scale n and is not expected at this scale; see
    # EXPERIMENTS.md.)
    assert mean_score("MR (MVB)", largest) > 0.6
    assert mean_score("MR (Light)", largest) > 0.5
