"""Figure 7 bench: runtime vs DB size, measured + cost-model projection."""

from __future__ import annotations

from repro.experiments import figure7
from repro.experiments.configs import ExperimentScale


def test_figure7_runtimes(benchmark, bench_scale, save_exhibit):
    scale = ExperimentScale(
        name="figure7",
        sizes=bench_scale.sizes[:2],  # MR drivers are the slow path
        dims=min(bench_scale.dims, 15),
        samples_per_reducer=bench_scale.samples_per_reducer,
        seed=bench_scale.seed,
    )
    measured = benchmark.pedantic(
        lambda: figure7.run_measured(scale), rounds=1, iterations=1
    )
    projected = figure7.run_projected(measured)
    text = "\n\n".join(
        [
            "Figure 7 — runtime (seconds) vs DB size",
            figure7._series_table(measured, "Measured (scaled sizes):"),
            figure7._series_table(projected, "Projected (paper sizes):"),
        ]
    )
    save_exhibit("figure7", text)

    def total(rows, name):
        return sum(r.seconds for r in rows if r.algorithm == name)

    # Paper shape 1: the full P3C+-MR variants are the slowest (more MR
    # jobs + EM iterations) in the paper-scale projection.
    slowest = max(
        ("BoW (Light)", "BoW (MVB)", "MR (Light)", "MR (MVB)", "MR (Naive)"),
        key=lambda name: total(projected, name),
    )
    assert slowest in ("MR (MVB)", "MR (Naive)")

    # Paper shape 2: MVB costs more than Naive, but only moderately
    # (paper: 10-20% overhead).
    mvb, naive = total(projected, "MR (MVB)"), total(projected, "MR (Naive)")
    assert mvb >= naive
    assert mvb <= 1.8 * naive

    # Paper shape 3: projected runtimes grow with n for every algorithm.
    for name in ("MR (Light)", "BoW (Light)"):
        series = sorted(
            (r.n, r.seconds) for r in projected if r.algorithm == name
        )
        times = [t for _, t in series]
        assert times == sorted(times)

    # The full MR pipeline runs more jobs than Light (measured).
    jobs = {r.algorithm: r.mr_jobs for r in measured}
    assert jobs["MR (MVB)"] > jobs["MR (Light)"]
