"""Service-plane benchmark: concurrent multi-tenant chains on one pool.

Runs 8 concurrent chains — three bulk tenants submitting two heavier
chains each, plus one light "probe" tenant submitting two small chains
— through the :class:`~repro.mapreduce.scheduler.ClusterService`
fair-share pool, and measures

- aggregate chain throughput (chains/s over the concurrent batch),
- per-tenant p50/p95 completion latency, and
- the *starvation ratio*: the probe tenant's p95 completion latency
  under contention divided by its solo (idle-service) latency.

The probe tenant is the canary for fair-share admission: it holds an
equal weight, so if heavier tenants could monopolise slots its small
chains would queue behind bulk task batches and the ratio would blow
up.  With per-task weighted fair queueing the probe interleaves at
every slot grant and stays within a small multiple of its solo
latency.

Writes ``BENCH_service.json`` at the repository root (schema v1).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_service.py --quick \\
        --max-starvation-ratio 3

``--max-starvation-ratio`` exits non-zero when the probe tenant's
p95/solo ratio exceeds the bound — the CI no-starvation gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.mapreduce import (  # noqa: E402
    ClusterService,
    JobChain,
    MapReduceRuntime,
    split_records,
)
from repro.obs.resources import percentile  # noqa: E402
from repro.mapreduce.job import Job, Mapper, Reducer  # noqa: E402

SCHEMA = "repro.benchmarks/service/v1"
DEFAULT_OUT = REPO_ROOT / "BENCH_service.json"


class SleepBucketMapper(Mapper):
    """Bucket-sum map task whose duration models cluster task cost.

    Task wall time is dominated by a per-task sleep (the cache carries
    ``task_ms``), so on a small benchmark host the measured latencies
    reflect *slot scheduling* — what this benchmark evaluates — rather
    than interpreter-level CPU contention between chains.
    """

    def map(self, key, value, context):
        context.emit(value % 8, value)

    def cleanup(self, context):
        time.sleep(context.cache["task_ms"] / 1000.0)


class SleepSumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))

    def cleanup(self, context):
        time.sleep(context.cache["task_ms"] / 1000.0)


def make_chain_fn(
    records: int, jobs: int, splits: int, task_ms: float, reducers: int
):
    """A chain of ``jobs`` bucket-sum MR jobs over ``records`` records,
    each map/reduce task taking ~``task_ms`` milliseconds."""
    from repro.mapreduce import DistributedCache

    def run(ctx) -> float:
        started = time.perf_counter()
        chain = JobChain(MapReduceRuntime(context=ctx))
        data = split_records([(i, i) for i in range(records)], splits)
        job = Job(
            mapper_factory=SleepBucketMapper,
            reducer_factory=SleepSumReducer,
            cache=DistributedCache({"task_ms": task_ms}),
        )
        for ordinal in range(jobs):
            result = chain.run(
                f"job_{ordinal}", job, data, num_reducers=reducers
            )
            data = split_records(result.output, splits)
        return time.perf_counter() - started

    return run


def run_benchmark(quick: bool) -> dict:
    slots = 4
    bulk_records = 200 if quick else 2_000
    probe_records = 40 if quick else 200
    bulk_jobs = 3 if quick else 5
    probe_jobs = 2
    bulk_task_ms = 30.0 if quick else 80.0
    probe_task_ms = 20.0 if quick else 50.0

    bulk_tenants = ("bulk_a", "bulk_b", "bulk_c")
    bulk_fn = make_chain_fn(
        bulk_records, bulk_jobs, splits=4, task_ms=bulk_task_ms, reducers=2
    )
    # The probe chain is intrinsically serial (one map split, one
    # reducer): its solo latency is the sum of its task times, not an
    # idle-pool parallel speedup.  Fair share guarantees it a prompt
    # slot — which is all a serial chain needs — so the contended/solo
    # ratio isolates scheduling delay from lost parallelism.
    probe_fn = make_chain_fn(
        probe_records, probe_jobs, splits=1, task_ms=probe_task_ms, reducers=1
    )

    # Solo latencies: each tenant's chain on an otherwise idle service.
    solo: dict[str, float] = {}
    for tenant, fn in (("probe", probe_fn), ("bulk", bulk_fn)):
        with ClusterService(slots=slots, executor="thread") as service:
            handle = service.submit(fn, name="solo", tenant=tenant)
            handle.wait()
        solo[tenant] = handle.result()

    # The contended batch: 8 concurrent chains, equal fair-share weights.
    submissions = [(tenant, bulk_fn) for tenant in bulk_tenants for _ in range(2)]
    submissions += [("probe", probe_fn)] * 2
    with ClusterService(slots=slots, executor="thread") as service:
        batch_started = time.perf_counter()
        handles = [
            service.submit(fn, name=f"c{i}", tenant=tenant)
            for i, (tenant, fn) in enumerate(submissions)
        ]
        for handle in handles:
            handle.wait()
        batch_wall = time.perf_counter() - batch_started
        pool_counters = service.pool.snapshot()["counters"]

    per_tenant: dict[str, list[float]] = {}
    for handle in handles:
        info = handle.info()
        # Completion latency = queue wait + run time, as the tenant
        # experiences it.
        latency = info["queue_wait_s"] + (info["run_s"] or 0.0)
        per_tenant.setdefault(handle.tenant, []).append(latency)

    tenants = {
        tenant: {
            "chains": len(latencies),
            "p50_s": percentile(sorted(latencies), 0.50),
            "p95_s": percentile(sorted(latencies), 0.95),
            "max_s": max(latencies),
        }
        for tenant, latencies in sorted(per_tenant.items())
    }
    probe_p95 = tenants["probe"]["p95_s"]
    starvation_ratio = probe_p95 / solo["probe"] if solo["probe"] > 0 else 0.0
    return {
        "schema": SCHEMA,
        "quick": quick,
        "slots": slots,
        "concurrent_chains": len(handles),
        "batch_wall_s": batch_wall,
        "throughput_chains_per_s": len(handles) / batch_wall,
        "solo_latency_s": solo,
        "tenants": tenants,
        "probe_p95_s": probe_p95,
        "starvation_ratio": starvation_ratio,
        "fair_share_counters": {
            group: values
            for group, values in pool_counters.items()
            if group.startswith("tenant.") or group == "service"
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT), help="output JSON path"
    )
    parser.add_argument(
        "--max-starvation-ratio",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail when probe p95 latency exceeds RATIO x its solo latency",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )

    print(
        f"{report['concurrent_chains']} concurrent chains on "
        f"{report['slots']} slots: {report['batch_wall_s']:.2f}s wall, "
        f"{report['throughput_chains_per_s']:.2f} chains/s"
    )
    for tenant, row in report["tenants"].items():
        print(
            f"  {tenant:<8} x{row['chains']}: p50 {row['p50_s']:.3f}s  "
            f"p95 {row['p95_s']:.3f}s"
        )
    print(
        f"probe solo {report['solo_latency_s']['probe']:.3f}s -> "
        f"contended p95 {report['probe_p95_s']:.3f}s "
        f"(starvation ratio {report['starvation_ratio']:.2f})"
    )
    print(f"report written to {args.out}")

    if (
        args.max_starvation_ratio is not None
        and report["starvation_ratio"] > args.max_starvation_ratio
    ):
        print(
            f"FAIL: starvation ratio {report['starvation_ratio']:.2f} > "
            f"bound {args.max_starvation_ratio}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
