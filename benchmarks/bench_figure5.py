"""Figure 5 bench: redundancy filtering and effect-size statistics."""

from __future__ import annotations

from repro.experiments import figure5


def test_figure5_threshold_sweep(benchmark, bench_scale, save_exhibit):
    sizes = (1_500, bench_scale.sizes[-1])
    thresholds = (1e-40, 1e-20, 1e-5, 1e-3)
    num_clusters = 5
    rows = benchmark.pedantic(
        lambda: figure5.run(
            sizes=sizes,
            dims=bench_scale.dims,
            num_clusters=num_clusters,
            thresholds=thresholds,
            seed=bench_scale.seed,
        ),
        rounds=1,
        iterations=1,
    )
    save_exhibit("figure5", figure5.render(rows, num_clusters))

    by_key = {(r.n, r.threshold, r.test): r for r in rows}
    for n in sizes:
        for threshold in thresholds:
            poisson = by_key[(n, threshold, "Poisson")]
            combined = by_key[(n, threshold, "Combined")]
            # Effect size can only remove cores, never add them.
            assert combined.cores_no_filter <= poisson.cores_no_filter
            # Filtering can only remove cores.
            assert poisson.cores_filtered <= poisson.cores_no_filter
            # With redundancy filtering the core count lands near the
            # true cluster count (paper: exactly on it over wide ranges).
            assert combined.cores_filtered <= 3 * num_clusters

    # Paper shape: Poisson-only over-generates at the loosest threshold.
    loosest = by_key[(sizes[-1], 1e-3, "Poisson")]
    tightest = by_key[(sizes[-1], 1e-40, "Poisson")]
    assert loosest.cores_no_filter >= tightest.cores_no_filter
