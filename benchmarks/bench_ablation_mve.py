"""Ablation: the exact MVE estimator (the paper's open question).

Section 4.2.2: "The exact MVE estimator will probably result in a
better clustering quality but ... the calculation of MVE is a
computationally expensive step.  Due to our focus on large data sets we
therefore leave this point not evaluated."

This bench evaluates it: E4SC and wall-clock of the full P3C+ with the
naive, MVB and (Khachiyan-based) MVE detectors over the size sweep.
"""

from __future__ import annotations

import time

from repro.core.p3c_plus import P3CPlus, P3CPlusConfig
from repro.eval import e4sc_score
from repro.experiments.runner import format_table, make_dataset

DETECTORS = ("naive", "mvb", "mve")


def _sweep(sizes, dims, seed):
    rows = []
    for n in sizes:
        dataset = make_dataset(n, dims, 5, 0.20, seed)
        truth = dataset.ground_truth_clusters()
        cells = {}
        for detector in DETECTORS:
            config = P3CPlusConfig(outlier_method=detector)
            started = time.perf_counter()
            result = P3CPlus(config).fit(dataset.data)
            elapsed = time.perf_counter() - started
            cells[detector] = (e4sc_score(result.clusters, truth), elapsed)
        rows.append((n, cells))
    return rows


def test_mve_estimator_ablation(benchmark, bench_scale, save_exhibit):
    rows = benchmark.pedantic(
        lambda: _sweep(
            bench_scale.sizes[:2], bench_scale.dims, bench_scale.seed
        ),
        rounds=1,
        iterations=1,
    )
    table_rows = []
    for n, cells in rows:
        table_rows.append(
            [n]
            + [round(cells[d][0], 3) for d in DETECTORS]
            + [round(cells[d][1], 2) for d in DETECTORS]
        )
    table = format_table(
        ["DB size"]
        + [f"{d} E4SC" for d in DETECTORS]
        + [f"{d} s" for d in DETECTORS],
        table_rows,
    )
    save_exhibit(
        "ablation_mve",
        "Ablation — naive vs MVB vs exact MVE outlier detection "
        "(the paper's Section 4.2.2 open question)\n" + table,
    )

    for _, cells in rows:
        # The robust estimators must not lose to naive by a wide margin.
        assert cells["mvb"][0] >= cells["naive"][0] - 0.05
        assert cells["mve"][0] >= cells["naive"][0] - 0.05
        # The paper's cost expectation: MVE is the most expensive of the
        # three detectors (allow measurement jitter on the total).
        assert cells["mve"][1] >= cells["mvb"][1] * 0.8
