#!/usr/bin/env python
"""Bench-regression gate: diff BENCH_*.json against committed baselines.

The repo commits five benchmark artifacts at the root —
``BENCH_hotpaths.json`` (data-plane speedup ratios),
``BENCH_service.json`` (fair-share service latencies),
``BENCH_serving.json`` (batched model-scoring throughput),
``BENCH_outofcore.json`` (bounded-RSS scan + spill shuffle) and
``BENCH_coreset.json`` (approximate-fit speedup + quality) — plus
frozen copies under ``benchmarks/baselines/``.  This script compares the named
headline metrics between the two and exits non-zero when any metric
regresses by more than the tolerance (20% by default), so CI fails the
build instead of silently eroding the numbers the paper reproduction
advertises.

Each metric has a direction: for *higher-is-better* ratios
(``shuffle_speedup``) a regression is the current value falling below
``baseline * (1 - tolerance)``; for *lower-is-better* latencies
(``probe_p95_s``, ``starvation_ratio``) it is the current value rising
above ``baseline * (1 + tolerance)``.  Improvements never fail.

Timing-sensitive metrics only compare like with like: when the
``quick`` flags of the current and baseline artifacts differ (CI quick
mode vs a full local run), metrics marked ``scale_sensitive`` are
skipped rather than producing false alarms from a smaller workload.

Usage::

    python benchmarks/check_regression.py              # gate both files
    python benchmarks/check_regression.py --quick      # CI: mark current
                                                       # runs as quick
    python benchmarks/check_regression.py \
        --current-dir /tmp/run --baseline-dir benchmarks/baselines
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE_DIR = Path(__file__).resolve().parent / "baselines"
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class MetricSpec:
    """One gated headline metric inside one benchmark artifact."""

    file: str             # artifact filename (same in both dirs)
    name: str             # top-level key holding the metric
    higher_is_better: bool
    scale_sensitive: bool = False  # skip when quick flags mismatch
    #: Absolute slack added to the bound in the failing direction.  A
    #: multiplicative tolerance is meaningless around a zero baseline
    #: (``peak_rss_ratio`` is 0.0 when the scan stays fully bounded),
    #: so metrics that can legitimately sit at zero carry an absolute
    #: allowance instead of failing on any nonzero jitter.
    slack: float = 0.0


#: The gated metrics.  Ratios (speedups, starvation) are scale-free and
#: always compared; absolute latencies/throughputs move with workload
#: size and only compare when both artifacts ran at the same scale.
METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("BENCH_hotpaths.json", "rssc_speedup", True),
    MetricSpec("BENCH_hotpaths.json", "shuffle_speedup", True),
    MetricSpec("BENCH_hotpaths.json", "shuffle_bytes_reduction", True),
    MetricSpec("BENCH_hotpaths.json", "combine_speedup", True),
    MetricSpec("BENCH_service.json", "starvation_ratio", False),
    MetricSpec(
        "BENCH_service.json", "probe_p95_s", False, scale_sensitive=True
    ),
    MetricSpec(
        "BENCH_service.json",
        "throughput_chains_per_s",
        True,
        scale_sensitive=True,
    ),
    MetricSpec("BENCH_serving.json", "assign_speedup", True),
    MetricSpec(
        "BENCH_serving.json",
        "throughput_points_per_s",
        True,
        scale_sensitive=True,
    ),
    MetricSpec(
        "BENCH_serving.json", "batch_p95_ms", False, scale_sensitive=True
    ),
    # Out-of-core plane: the bounded scan's RSS growth as a fraction of
    # the dataset (0.0 when fully bounded; 5% absolute allowance for
    # allocator jitter) and the spill volume the forced shuffle pushes
    # to disk (shrinking spill = buckets silently staying in heap).
    MetricSpec(
        "BENCH_outofcore.json",
        "peak_rss_ratio",
        False,
        scale_sensitive=True,
        slack=0.05,
    ),
    MetricSpec(
        "BENCH_outofcore.json",
        "spilled_bytes",
        True,
        scale_sensitive=True,
    ),
    # Coreset fast path: wall-clock multiple over the exact chain (the
    # ratio shifts with workload size — the two extra full scans
    # amortise better at larger n — so it only compares like scales)
    # and the fraction of the exact fit's E4SC the approximate fit
    # retains (scale-free).
    MetricSpec(
        "BENCH_coreset.json",
        "coreset_speedup",
        True,
        scale_sensitive=True,
    ),
    MetricSpec("BENCH_coreset.json", "e4sc_retention", True),
)


def _load(path: Path) -> dict | None:
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_regressions(
    current_dir: Path,
    baseline_dir: Path,
    tolerance: float = DEFAULT_TOLERANCE,
    quick: bool | None = None,
) -> tuple[list[str], list[str]]:
    """Compare every gated metric; returns ``(failures, report_lines)``.

    ``quick`` overrides the current artifacts' own ``quick`` flag (CI
    passes ``--quick`` when it regenerated the artifacts in quick
    mode); ``None`` trusts the flag stored in each file.
    """
    failures: list[str] = []
    lines: list[str] = []
    cache: dict[str, tuple[dict | None, dict | None]] = {}
    for spec in METRICS:
        if spec.file not in cache:
            cache[spec.file] = (
                _load(current_dir / spec.file),
                _load(baseline_dir / spec.file),
            )
        current, baseline = cache[spec.file]
        label = f"{spec.file}:{spec.name}"
        if baseline is None:
            lines.append(f"SKIP {label}: no baseline committed")
            continue
        if current is None:
            failures.append(f"{label}: current artifact missing")
            continue
        if spec.name not in baseline:
            lines.append(f"SKIP {label}: not in baseline")
            continue
        if spec.name not in current:
            failures.append(f"{label}: missing from current artifact")
            continue
        current_quick = (
            bool(current.get("quick")) if quick is None else quick
        )
        if spec.scale_sensitive and current_quick != bool(
            baseline.get("quick")
        ):
            lines.append(
                f"SKIP {label}: quick-mode mismatch "
                f"(current={current_quick}, "
                f"baseline={bool(baseline.get('quick'))})"
            )
            continue
        base = float(baseline[spec.name])
        now = float(current[spec.name])
        if spec.higher_is_better:
            bound = base * (1.0 - tolerance) - spec.slack
            regressed = now < bound
            arrow = ">="
        else:
            bound = base * (1.0 + tolerance) + spec.slack
            regressed = now > bound
            arrow = "<="
        verdict = "FAIL" if regressed else "ok"
        lines.append(
            f"{verdict:>4} {label}: {now:.4g} "
            f"(baseline {base:.4g}, must be {arrow} {bound:.4g})"
        )
        if regressed:
            change = (
                f"{(now - base) / base * 100.0:+.1f}%"
                if base != 0
                else f"+{now - base:.4g} absolute"
            )
            failures.append(
                f"{label}: {now:.4g} vs baseline {base:.4g} "
                f"({change}, tolerance ±{tolerance:.0%})"
            )
    return failures, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when committed benchmark metrics regress "
        "beyond tolerance"
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json files under test "
        "(default: repo root)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="directory holding the frozen baselines "
        "(default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        default=None,
        help="treat current artifacts as quick-mode runs: "
        "scale-sensitive metrics are skipped unless the baseline "
        "is quick too",
    )
    args = parser.parse_args(argv)
    failures, lines = check_regressions(
        args.current_dir, args.baseline_dir, args.tolerance, args.quick
    )
    for line in lines:
        print(line)
    if failures:
        print(
            f"\n{len(failures)} benchmark regression(s):", file=sys.stderr
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall gated benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
